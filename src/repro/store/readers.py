"""Reader adapters: every known result payload, flattened into store records.

A *reader* takes one JSON-native payload (the documents the suites, sweep
drivers, benches and service jobs already emit) and returns a
:class:`RunBatch`: the flat records to append plus the run identity carried
by the payload itself (run ID, suite name, source schema).  Readers are
registered by name and matched to payloads by their ``schema`` field, so
``repro ingest`` and the service's job-completion hook auto-detect the
right adapter.

Record vocabulary (the ``experiment`` column is the record kind):

* ``sweep`` / ``fit`` / ``rebalance`` / ``balance`` -- one scenario's
  measured points and derived analysis, keyed by the runtime's
  content-addressed execution keys where the payload carries them;
* ``figure2`` / ``linear-array`` / ``mesh-array`` / ``systolic`` /
  ``pebble`` / ``warp`` -- experiment-driver headline summaries (pebble
  additionally emits one record per measured point), keyed by task keys;
* ``runtime`` -- one record per suite run with worker/cache counters;
* ``bench-systolic`` / ``bench-service`` -- benchmark timings, keyed by a
  stable digest of the case identity so the same case matches across runs;
* ``summary`` -- the E1 analytic-vs-measured classification rows.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.store.core import IngestReceipt, ResultStore

__all__ = [
    "RunBatch",
    "register_reader",
    "get_reader",
    "reader_names",
    "describe_readers",
    "detect_reader",
    "read_payload",
    "ingest_payload",
    "ingest_file",
]


@dataclass(frozen=True)
class RunBatch:
    """One reader's output: the records plus the payload's run identity."""

    records: tuple[dict[str, Any], ...]
    source_schema: str | None = None
    run_id: str | None = None
    suite: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(dict(r) for r in self.records))


ReaderFn = Callable[[Mapping[str, Any]], RunBatch]


@dataclass(frozen=True)
class Reader:
    """One registered payload adapter."""

    name: str
    fn: ReaderFn
    schemas: tuple[str, ...]
    description: str = ""


_READERS: dict[str, Reader] = {}


def register_reader(
    name: str, *, schemas: Sequence[str] = (), description: str = ""
) -> Callable[[ReaderFn], ReaderFn]:
    """Decorator registering a reader; ``schemas`` are payload-schema prefixes."""

    def decorate(fn: ReaderFn) -> ReaderFn:
        if name in _READERS:
            raise ConfigurationError(f"reader {name!r} is already registered")
        _READERS[name] = Reader(
            name=name, fn=fn, schemas=tuple(schemas), description=description
        )
        return fn

    return decorate


def get_reader(name: str) -> Reader:
    """Look up a registered reader by name."""
    try:
        return _READERS[name]
    except KeyError:
        known = ", ".join(sorted(_READERS))
        raise ConfigurationError(
            f"unknown reader {name!r}; known readers: {known}"
        ) from None


def reader_names() -> list[str]:
    """Every registered reader name, sorted."""
    return sorted(_READERS)


def describe_readers() -> list[dict[str, str]]:
    """Name, schema prefixes and description for every reader."""
    return [
        {
            "reader": name,
            "schemas": ", ".join(_READERS[name].schemas),
            "description": _READERS[name].description,
        }
        for name in reader_names()
    ]


def detect_reader(payload: Mapping[str, Any]) -> Reader:
    """The reader whose schema prefix matches the payload's ``schema``."""
    schema = payload.get("schema")
    if not isinstance(schema, str):
        raise ConfigurationError(
            "payload has no 'schema' field; pass an explicit reader name"
        )
    for reader in _READERS.values():
        if any(schema.startswith(prefix) for prefix in reader.schemas):
            return reader
    known = ", ".join(
        prefix for reader in _READERS.values() for prefix in reader.schemas
    )
    raise ConfigurationError(
        f"no reader matches payload schema {schema!r}; known schemas: {known}"
    )


def read_payload(
    payload: Mapping[str, Any], *, reader: str | None = None
) -> tuple[Reader, RunBatch]:
    """Flatten one payload through an explicit or auto-detected reader."""
    chosen = get_reader(reader) if reader else detect_reader(payload)
    return chosen, chosen.fn(payload)


def ingest_payload(
    store: ResultStore,
    payload: Mapping[str, Any],
    *,
    reader: str | None = None,
    run_id: str | None = None,
    suite: str | None = None,
    trace_id: str | None = None,
) -> IngestReceipt:
    """Flatten one payload and append it to the store (dedup included).

    ``run_id``/``suite``/``trace_id`` override what the payload carries --
    the service uses this to stamp job identity onto ingested results.
    """
    chosen, batch = read_payload(payload, reader=reader)
    return store.append_run(
        batch.records,
        source=chosen.name,
        source_schema=batch.source_schema,
        run_id=run_id or batch.run_id,
        suite=suite or batch.suite,
        trace_id=trace_id,
    )


def ingest_file(
    store: ResultStore, path: str | Path, *, reader: str | None = None
) -> IngestReceipt:
    """Ingest one JSON artifact from disk (``repro ingest``)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ConfigurationError(f"{path} is not a JSON object")
    return ingest_payload(store, payload, reader=reader)


def _case_key(**identity: Any) -> str:
    """A stable content key for records without a runtime task key.

    Bench rows have no content-addressed execution behind them; this digest
    of the case identity is what lets the same case line up across runs for
    trend and regression transforms.
    """
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _scalar_summary(summary: Mapping[str, Any]) -> dict[str, Any]:
    """The scalar slice of an experiment summary (lists become counts)."""
    flat: dict[str, Any] = {}
    for name, value in summary.items():
        if isinstance(value, (list, tuple)):
            flat[f"{name}_count"] = len(value)
        elif isinstance(value, Mapping):
            continue
        else:
            flat[name] = value
    return flat


def _experiment_records(
    kind: str,
    scenario: str,
    tasks: int,
    summary: Mapping[str, Any],
    task_keys: Sequence[str | None] = (),
) -> list[dict[str, Any]]:
    """One headline record per experiment scenario (pebble: plus points)."""
    records: list[dict[str, Any]] = []
    headline = {
        "experiment": kind,
        "scenario": scenario,
        "key": task_keys[0] if task_keys else None,
        "tasks": tasks,
        **_scalar_summary(summary),
    }
    records.append(headline)
    if kind == "pebble":
        points = summary.get("points") or []
        for index, point in enumerate(points):
            records.append(
                {
                    "experiment": "pebble",
                    "scenario": f"{scenario}/{point.get('dag')}"
                    f"/M={point.get('fast_memory_words')}",
                    "key": task_keys[index] if index < len(task_keys) else None,
                    **{k: v for k, v in point.items()},
                }
            )
    return records


# ---------------------------------------------------------------------------
# Suite results (repro-suite-result/v2 and /v3).
# ---------------------------------------------------------------------------


@register_reader(
    "suite",
    schemas=("repro-suite-result/",),
    description="suite runs: sweep rows, fits, rebalance/balance, experiments",
)
def read_suite_result(payload: Mapping[str, Any]) -> RunBatch:
    records: list[dict[str, Any]] = []
    for scenario in payload.get("scenarios", ()):
        name = scenario.get("scenario")
        kernel = scenario.get("kernel")
        point_keys = scenario.get("point_keys") or ()
        for index, row in enumerate(scenario.get("rows", ())):
            records.append(
                {
                    "experiment": "sweep",
                    "scenario": name,
                    "kernel": kernel,
                    "key": point_keys[index] if index < len(point_keys) else None,
                    **row,
                }
            )
        fit = scenario.get("fit")
        if fit:
            records.append(
                {"experiment": "fit", "scenario": name, "kernel": kernel, **fit}
            )
        for row in scenario.get("rebalance", ()):
            records.append(
                {"experiment": "rebalance", "scenario": name, "kernel": kernel, **row}
            )
        for row in scenario.get("balance", ()):
            records.append(
                {"experiment": "balance", "scenario": name, "kernel": kernel, **row}
            )
    for experiment in payload.get("experiments", ()):
        records.extend(
            _experiment_records(
                experiment.get("experiment", ""),
                experiment.get("scenario", ""),
                experiment.get("tasks", 0),
                experiment.get("summary") or {},
                experiment.get("task_keys") or (),
            )
        )
    runtime = payload.get("runtime") or {}
    runtime_record: dict[str, Any] = {
        "experiment": "runtime",
        "scenario": payload.get("suite"),
        "elapsed_seconds": payload.get("elapsed_seconds"),
    }
    for name, value in runtime.items():
        if isinstance(value, Mapping):
            for inner, inner_value in value.items():
                if not isinstance(inner_value, (Mapping, list, tuple)):
                    runtime_record[f"{name}_{inner}"] = inner_value
        elif not isinstance(value, (list, tuple)):
            runtime_record[name] = value
    records.append(runtime_record)
    return RunBatch(
        records=tuple(records),
        source_schema=payload.get("schema"),
        run_id=payload.get("run_id"),
        suite=payload.get("suite"),
    )


# ---------------------------------------------------------------------------
# Standalone sweeps (repro-sweep-result/v1, repro-sweep-analytic/v1).
# ---------------------------------------------------------------------------


@register_reader(
    "sweep",
    schemas=("repro-sweep-result/", "repro-sweep-analytic/"),
    description="standalone kernel sweeps (measured or analytic)",
)
def read_sweep_result(payload: Mapping[str, Any]) -> RunBatch:
    kernel = payload.get("kernel")
    scenario = f"sweep-{kernel}"
    records: list[dict[str, Any]] = []
    for row in payload.get("rows", ()):
        records.append(
            {"experiment": "sweep", "scenario": scenario, "kernel": kernel, **row}
        )
    fit = payload.get("fit")
    if fit:
        records.append(
            {"experiment": "fit", "scenario": scenario, "kernel": kernel, **fit}
        )
    for row in payload.get("rebalance", ()):
        records.append(
            {"experiment": "rebalance", "scenario": scenario, "kernel": kernel, **row}
        )
    return RunBatch(records=tuple(records), source_schema=payload.get("schema"))


# ---------------------------------------------------------------------------
# Service experiment jobs (repro-service-experiment/v1).
# ---------------------------------------------------------------------------


@register_reader(
    "experiment",
    schemas=("repro-service-experiment/",),
    description="experiment-driver summaries (service jobs, CLI drivers)",
)
def read_experiment_result(payload: Mapping[str, Any]) -> RunBatch:
    kind = payload.get("experiment", "")
    scenario = payload.get("scenario") or f"experiment-{kind}"
    records = _experiment_records(
        kind,
        scenario,
        payload.get("tasks", 0),
        payload.get("summary") or {},
        payload.get("task_keys") or (),
    )
    return RunBatch(records=tuple(records), source_schema=payload.get("schema"))


# ---------------------------------------------------------------------------
# Benchmark artifacts (BENCH_systolic.json, BENCH_service.json).
# ---------------------------------------------------------------------------


@register_reader(
    "bench-systolic",
    schemas=("repro-bench-systolic/",),
    description="engine-vs-engine systolic timings (BENCH_systolic.json)",
)
def read_bench_systolic(payload: Mapping[str, Any]) -> RunBatch:
    records: list[dict[str, Any]] = []
    cases = (
        ("matmul", ("order", "batches")),
        ("matvec", ("length", "batches")),
        ("qr", ("order", "rows")),
    )
    for kind, identity_fields in cases:
        for row in payload.get(kind, ()):
            identity = {name: row.get(name) for name in identity_fields}
            label = "/".join(f"{name}={value}" for name, value in identity.items())
            records.append(
                {
                    "experiment": "bench-systolic",
                    "scenario": f"{kind}/{label}",
                    "kernel": kind,
                    "key": _case_key(bench="systolic", kind=kind, **identity),
                    **row,
                }
            )
    return RunBatch(records=tuple(records), source_schema=payload.get("schema"))


@register_reader(
    "bench-service",
    schemas=("repro-bench-service/",),
    description="service latency and dedup benchmarks (BENCH_service.json)",
)
def read_bench_service(payload: Mapping[str, Any]) -> RunBatch:
    records: list[dict[str, Any]] = []
    for kind, row in (payload.get("latency") or {}).items():
        records.append(
            {
                "experiment": "bench-service",
                "scenario": f"latency/{kind}",
                "key": _case_key(bench="service", case="latency", kind=kind),
                **row,
            }
        )
    dedup = payload.get("dedup")
    if dedup:
        records.append(
            {
                "experiment": "bench-service",
                "scenario": "dedup",
                "key": _case_key(bench="service", case="dedup"),
                **dedup,
            }
        )
    return RunBatch(records=tuple(records), source_schema=payload.get("schema"))


# ---------------------------------------------------------------------------
# Trace spans (repro-spans/v1).
# ---------------------------------------------------------------------------


@register_reader(
    "spans",
    schemas=("repro-spans/",),
    description="trace span trees: per-span inclusive/exclusive timings",
)
def read_spans_payload(payload: Mapping[str, Any]) -> RunBatch:
    """One record per span, with tree-derived depth and exclusive time.

    ``exclusive_seconds`` is the span's duration minus its direct
    children's -- the time genuinely spent *at* that level, which is what
    hotspot rollups must sum so nested spans are never double-counted.
    The trace ID travels as run metadata (``run_id``), not as a record
    column: ``trace_id`` is one of the store's reserved run columns.
    """
    spans = [dict(s) for s in payload.get("spans", ())]
    by_id: dict[Any, dict[str, Any]] = {s.get("span_id"): s for s in spans}
    child_seconds: dict[Any, float] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent in by_id:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + float(
                s.get("duration") or 0.0
            )

    def _depth(span_id: Any) -> int:
        depth = 1
        parent = by_id[span_id].get("parent_id")
        while parent in by_id:
            depth += 1
            parent = by_id[parent].get("parent_id")
        return depth

    records: list[dict[str, Any]] = []
    for s in spans:
        duration = float(s.get("duration") or 0.0)
        attributes = s.get("attributes") or {}
        records.append(
            {
                "experiment": "span",
                "scenario": s.get("name"),
                "key": s.get("span_id"),
                "name": s.get("name"),
                "kind": s.get("kind"),
                "parent_id": s.get("parent_id"),
                "depth": _depth(s.get("span_id")),
                "seconds": duration,
                "exclusive_seconds": max(
                    0.0, duration - child_seconds.get(s.get("span_id"), 0.0)
                ),
                "calls": int(attributes.get("calls") or 1),
                "start_wall": s.get("start_wall"),
                "pid": s.get("pid"),
            }
        )
    return RunBatch(
        records=tuple(records),
        source_schema=payload.get("schema"),
        run_id=payload.get("trace_id"),
    )


# ---------------------------------------------------------------------------
# The E1 summary experiment (repro-summary/v1).
# ---------------------------------------------------------------------------


@register_reader(
    "summary",
    schemas=("repro-summary/",),
    description="E1 analytic-vs-measured classification rows",
)
def read_summary_result(payload: Mapping[str, Any]) -> RunBatch:
    records = tuple(dict(row) for row in payload.get("records", ()))
    return RunBatch(records=records, source_schema=payload.get("schema"))

"""``repro.faults`` -- deterministic fault injection for chaos testing.

The resilience layer (retries, worker supervision, admission control,
journal recovery) only earns trust when its failure paths are *exercised*,
not just written.  This package provides seeded, reproducible injection
points that the service stack calls at the moments real systems break:

* ``task-crash`` -- kill the worker thread that claimed a job, mid-job
  (exercises the supervisor requeue + respawn path);
* ``slow-task`` -- stall a job's execution by a configured delay
  (exercises timeouts, adaptive client polling and stuck-job detection);
* ``cache-write-failure`` -- fail an atomic cache/store write with
  ``OSError`` (exercises the best-effort cache contract: a full disk must
  cost a future cache miss, never a failed job);
* ``journal-torn-write`` -- persist only a prefix of one journal line, the
  artifact a crash mid-append leaves (exercises torn-tail repair, replay
  skipping and ``repro doctor``'s torn-line classification).

Injection is **off by default and free when off**: every injection point is
a module-global ``None`` check.  Chaos runs activate it via
:func:`repro.faults.injector.install` (tests), the ``REPRO_FAULTS`` /
``REPRO_FAULTS_SEED`` environment variables, or ``repro serve --faults``.
Decisions are drawn from per-rule seeded RNGs, so a chaos run is
reproducible: the same spec, seed and hit sequence fires the same faults.

This package sits *below* the runtime and service layers (they import it;
it imports only :mod:`repro.exceptions` and :mod:`repro.obs.metrics`).
"""

from repro.faults.injector import (
    FAULT_KINDS,
    FaultInjector,
    FaultRule,
    InjectedFaultError,
    InjectedWorkerCrash,
    active,
    current_injector,
    install,
    install_from_env,
    maybe_inject,
    parse_fault_spec,
    torn_write_armed,
    uninstall,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRule",
    "InjectedFaultError",
    "InjectedWorkerCrash",
    "active",
    "current_injector",
    "install",
    "install_from_env",
    "maybe_inject",
    "parse_fault_spec",
    "torn_write_armed",
    "uninstall",
]

"""The fault injector: seeded rules, a process-global switch, injection points.

A chaos run is described by a *spec string* -- rules separated by ``;``,
each ``kind:option=value,option=value`` -- for example::

    task-crash:count=2;slow-task:rate=0.3,delay=0.05;journal-torn-write:count=1

Options per rule:

``rate``
    Probability in ``[0, 1]`` that an eligible hit fires, drawn from the
    rule's own seeded RNG (default ``1.0``: every eligible hit fires).
``count``
    Maximum number of fires, process-wide (default unlimited).  ``rate=1``
    plus ``count=N`` fires on exactly the first N eligible hits regardless
    of thread interleaving -- the most reproducible shape.
``after``
    Skip the first N eligible hits before firing becomes possible
    (default 0); lets a chaos run warm up before breaking things.
``delay``
    Seconds to stall for ``slow-task`` rules (default 0.05).
``site``
    Substring filter on the injection-point label; a hit whose site does
    not contain it is not eligible for this rule.

Determinism: each rule draws from ``random.Random(f"{seed}:{index}:{kind}")``
under the injector's lock, so a single-threaded hit sequence is exactly
reproducible and a multi-threaded one is reproducible in *counts* whenever
``rate`` is 0 or 1 (the recommended chaos-suite configuration).
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.exceptions import ConfigurationError, ReproError
from repro.obs.metrics import REGISTRY

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRule",
    "InjectedFaultError",
    "InjectedWorkerCrash",
    "active",
    "current_injector",
    "install",
    "install_from_env",
    "maybe_inject",
    "parse_fault_spec",
    "torn_write_armed",
    "uninstall",
]

#: The injection points the stack exposes (see the package docstring).
FAULT_KINDS = (
    "task-crash",
    "slow-task",
    "cache-write-failure",
    "journal-torn-write",
)

ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"

_METRIC_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total",
    "Faults fired by the chaos injector, by kind.",
    labelnames=("kind",),
)


class InjectedFaultError(ReproError):
    """A transient failure manufactured by the fault injector.

    Raised for injected I/O-shaped faults; classified as retryable by the
    service's retry policy, exactly like the real ``OSError`` it stands for.
    """


class InjectedWorkerCrash(BaseException):
    """An injected worker-thread death.

    Deliberately **not** an :class:`Exception`: the worker loop's
    job-must-never-kill-a-worker guard catches ``Exception``, and this fault
    exists precisely to kill the worker thread mid-job so the supervisor's
    detect/requeue/respawn path runs.  Only the pool's thread entry point
    catches it (to keep the death quiet on stderr).
    """


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: what fires, how often, and with what parameters."""

    kind: str
    rate: float = 1.0
    count: int | None = None
    after: int = 0
    delay: float = 0.05
    site: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known kinds: {known}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be in [0, 1], got {self.rate!r}"
            )
        if self.count is not None and self.count < 0:
            raise ConfigurationError(
                f"fault count must be >= 0, got {self.count!r}"
            )
        if self.after < 0:
            raise ConfigurationError(
                f"fault 'after' must be >= 0, got {self.after!r}"
            )
        if self.delay < 0:
            raise ConfigurationError(
                f"fault delay must be >= 0, got {self.delay!r}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "count": self.count,
            "after": self.after,
            "delay": self.delay,
            "site": self.site,
        }


def parse_fault_spec(spec: str) -> list[FaultRule]:
    """Parse a ``kind:opt=val,...;kind:...`` spec string into rules."""
    rules = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, option_text = chunk.partition(":")
        kind = kind.strip()
        options: dict[str, Any] = {}
        for pair in option_text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            name, sep, value = pair.partition("=")
            name = name.strip()
            if not sep or not name:
                raise ConfigurationError(
                    f"fault option {pair!r} is not name=value (in {chunk!r})"
                )
            value = value.strip()
            try:
                if name in ("rate", "delay"):
                    options[name] = float(value)
                elif name in ("count", "after"):
                    options[name] = int(value)
                elif name == "site":
                    options[name] = value
                else:
                    raise ConfigurationError(
                        f"unknown fault option {name!r} (in {chunk!r}); "
                        "known: rate, count, after, delay, site"
                    )
            except ValueError as exc:
                raise ConfigurationError(
                    f"fault option {pair!r} has a bad value (in {chunk!r})"
                ) from exc
        rules.append(FaultRule(kind=kind, **options))
    if not rules:
        raise ConfigurationError(f"fault spec {spec!r} contains no rules")
    return rules


class FaultInjector:
    """Seeded decision engine over a set of :class:`FaultRule` instances."""

    def __init__(
        self, rules: Iterable[FaultRule], *, seed: int = 0
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._rngs = [
            random.Random(f"{self.seed}:{index}:{rule.kind}")
            for index, rule in enumerate(self.rules)
        ]
        self._hits = [0] * len(self.rules)
        self._fires = [0] * len(self.rules)

    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 0) -> "FaultInjector":
        return cls(parse_fault_spec(spec), seed=seed)

    def decide(self, kind: str, site: str = "") -> FaultRule | None:
        """Return the first rule of ``kind`` that fires for this hit."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.kind != kind:
                    continue
                if rule.site is not None and rule.site not in site:
                    continue
                self._hits[index] += 1
                if self._hits[index] <= rule.after:
                    continue
                if rule.count is not None and self._fires[index] >= rule.count:
                    continue
                if rule.rate < 1.0 and self._rngs[index].random() >= rule.rate:
                    continue
                self._fires[index] += 1
                return rule
        return None

    def fired(self, kind: str | None = None) -> int:
        """Total fires, overall or for one kind."""
        with self._lock:
            return sum(
                fires
                for rule, fires in zip(self.rules, self._fires)
                if kind is None or rule.kind == kind
            )

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [
                    {**rule.as_dict(), "hits": hits, "fires": fires}
                    for rule, hits, fires in zip(
                        self.rules, self._hits, self._fires
                    )
                ],
            }


# ---------------------------------------------------------------------------
# The process-global switch and the injection-point API.
# ---------------------------------------------------------------------------

_INJECTOR: FaultInjector | None = None


def install(injector: FaultInjector) -> FaultInjector:
    """Arm ``injector`` process-wide; returns it for chaining."""
    global _INJECTOR
    _INJECTOR = injector
    return injector


def uninstall() -> None:
    """Disarm fault injection (injection points become no-ops again)."""
    global _INJECTOR
    _INJECTOR = None


def active() -> bool:
    return _INJECTOR is not None


def current_injector() -> FaultInjector | None:
    return _INJECTOR


def install_from_env(environ: Mapping[str, str] | None = None) -> FaultInjector | None:
    """Arm the injector from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``.

    Returns the installed injector, or ``None`` when the spec variable is
    unset or empty (nothing is armed).
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(ENV_SPEC, "").strip()
    if not spec:
        return None
    seed_text = environ.get(ENV_SEED, "0").strip() or "0"
    try:
        seed = int(seed_text)
    except ValueError as exc:
        raise ConfigurationError(
            f"{ENV_SEED} must be an integer, got {seed_text!r}"
        ) from exc
    return install(FaultInjector.from_spec(spec, seed=seed))


def maybe_inject(kind: str, site: str = "") -> None:
    """The injection point: act out ``kind`` if a rule fires, else return.

    * ``slow-task`` sleeps for the rule's ``delay`` and returns;
    * ``task-crash`` raises :class:`InjectedWorkerCrash`;
    * ``cache-write-failure`` raises :class:`OSError`;
    * ``journal-torn-write`` never fires here -- it needs the caller to
      write partial data, so journal writers use :func:`torn_write_armed`.
    """
    injector = _INJECTOR
    if injector is None:
        return
    rule = injector.decide(kind, site)
    if rule is None:
        return
    _METRIC_INJECTED.labels(kind=kind).inc()
    if kind == "slow-task":
        time.sleep(rule.delay)
        return
    if kind == "task-crash":
        raise InjectedWorkerCrash(f"injected worker crash at {site or 'job'}")
    if kind == "cache-write-failure":
        raise OSError(f"injected cache write failure at {site or 'cache'}")


def torn_write_armed(site: str = "") -> bool:
    """True when a ``journal-torn-write`` rule fires for this journal append.

    The caller then persists only a prefix of its line -- the artifact an
    interrupted ``write(2)`` leaves -- instead of raising.
    """
    injector = _INJECTOR
    if injector is None:
        return False
    if injector.decide("journal-torn-write", site) is None:
        return False
    _METRIC_INJECTED.labels(kind="journal-torn-write").inc()
    return True

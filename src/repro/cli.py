"""Command-line interface: regenerate the paper's artifacts from a shell.

The CLI is a thin wrapper over :mod:`repro.experiments`; each subcommand runs
one experiment and prints its tables.

Examples
--------
::

    python -m repro list                     # what can be regenerated
    python -m repro summary --quick          # E1, small problem sizes
    python -m repro matmul                   # E2 intensity + rebalancing curve
    python -m repro figure2                  # the Figure 2 decomposition
    python -m repro arrays                   # E10/E11 sizing tables
    python -m repro systolic                 # E12 cycle-level simulations
    python -m repro pebble                   # E9 pebble game vs lower bounds
    python -m repro warp                     # E13 Warp case study
    python -m repro sweep fft --jobs 4       # one kernel through the runtime
    python -m repro suite quick --json out.json   # a whole scenario suite
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.report import Table
from repro.analysis.sweep import normalize_memory_sizes
from repro.core.intensity import PowerLawIntensity
from repro.experiments.arrays_section4 import (
    linear_array_task,
    mesh_array_task,
    systolic_task,
)
from repro.experiments.fft_figure2 import figure2_task, render_decomposition
from repro.experiments.intensity import run_intensity_experiment
from repro.experiments.pebble_bounds import run_pebble_experiment
from repro.experiments.summary import (
    analytic_summary_table,
    run_summary_experiment,
    summary_table,
)
from repro.experiments.warp_study import warp_task
from repro.kernels import (
    BlockedFFT,
    BlockedLUTriangularization,
    BlockedMatrixMultiply,
    ExternalMergeSort,
    GridRelaxation,
    StreamingMatrixVectorProduct,
    StreamingTriangularSolve,
)
from repro.runtime import (
    ExperimentScenario,
    ResultCache,
    SweepRunner,
    TaskCache,
    TaskRunner,
    build_kernel,
    cost_grid,
    get_suite,
    kernel_factories,
    rebalance_grid,
    run_suite,
    store_for,
    suite_names,
)
from repro.store import (
    ResultStore,
    ingest_file,
    ingest_payload,
    query,
    records_table,
    report_document,
)
from repro.store.query import group_counts
from repro.core.registry import get as get_registry_spec
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


_KERNEL_COMMANDS = {
    "matmul": (BlockedMatrixMultiply, 48, (12, 27, 48, 108, 192, 300, 432), None),
    "triangularization": (BlockedLUTriangularization, 48, (12, 27, 48, 108, 192, 300), None),
    "grid2d": (lambda: GridRelaxation(dimension=2), 7, (100, 256, 576, 1296, 2704), None),
    "grid3d": (lambda: GridRelaxation(dimension=3), 7, (512, 1728, 4096, 13824), None),
    "fft": (BlockedFFT, 12, (4, 8, 16, 32, 128, 8192), 32),
    "sorting": (ExternalMergeSort, 16384, (8, 32, 128, 512), 32),
    "matvec": (StreamingMatrixVectorProduct, 64, (8, 32, 128, 512, 2048), None),
    "triangular_solve": (StreamingTriangularSolve, 64, (8, 32, 128, 512, 2048), None),
}

#: Default memory grid and scale for `repro sweep KERNEL`, per kernel.
_DEFAULT_SWEEPS: dict[str, tuple[tuple[int, ...], int]] = {
    "matmul": ((12, 27, 48, 108, 192, 300, 432), 48),
    "triangularization": ((12, 27, 48, 108, 192, 300), 48),
    "grid1d": ((16, 64, 256, 1024), 64),
    "grid2d": ((100, 256, 576, 1296, 2704), 7),
    "grid3d": ((512, 1728, 4096, 13824), 7),
    "grid4d": ((256, 1296, 4096, 20736), 5),
    "fft": ((4, 8, 16, 32, 128, 8192), 12),
    "sorting": ((8, 32, 128, 512), 16384),
    "matvec": ((8, 32, 128, 512, 2048), 64),
    "triangular_solve": ((8, 32, 128, 512, 2048), 64),
    "sparse_matvec": ((8, 32, 128, 512, 2048), 64),
}

_EXPERIMENT_DESCRIPTIONS = {
    "list": "list every experiment and subcommand",
    "summary": "E1: the Section 3 summary table (analytic and measured)",
    "sweep": "run one kernel sweep through the scenario runtime (JSON/CSV output)",
    "suite": "run a named scenario suite through the parallel runtime",
    "serve": "run the long-lived job service (HTTP JSON API over the runtime)",
    "submit": "submit a job to a running service and wait for its result",
    "trace": "show or export a job's span tree from a running service",
    "cache": "inspect or clear the on-disk result caches and the result store",
    "report": "query recorded results: filter, transform and render run history",
    "ingest": "load result JSON artifacts (suite/sweep/bench) into the result store",
    "doctor": "diagnose cache integrity, journal health, worker liveness and environment",
    "figure2": "E6: the Figure 2 FFT decomposition (N=16, M=4)",
    "arrays": "E10/E11: per-cell memory sizing for linear arrays and meshes",
    "systolic": "E12: cycle-level systolic matmul / matvec simulations",
    "pebble": "E9: red-blue pebble game vs Hong-Kung lower bounds",
    "warp": "E13: the CMU Warp machine case study",
    **{
        name: f"E2-E8: measured intensity and rebalancing curve for {name}"
        for name in _KERNEL_COMMANDS
    },
}


def _print(text: str) -> None:
    print(text)
    print()


def _store_from_args(args: argparse.Namespace) -> ResultStore | None:
    """The result store under the command's cache root (None when uncached)."""
    if getattr(args, "no_cache", False):
        return None
    root = Path(getattr(args, "cache_dir", None) or _default_cache_dir())
    return ResultStore(root / "store")


def _record_payload(args: argparse.Namespace, payload: dict) -> None:
    """Best-effort ingest of one result document into the store.

    History recording must never fail the experiment that produced the
    result; a broken store directory degrades to a warning.
    """
    store = _store_from_args(args)
    if store is None:
        return
    try:
        receipt = ingest_payload(store, payload)
    except Exception as exc:  # noqa: BLE001 - history is best-effort
        print(f"repro: warning: could not record result: {exc}", file=sys.stderr)
        return
    note = "" if receipt.added else " (deduplicated)"
    print(f"recorded run {receipt.run_id}{note} [{store.root}]")


def _record_experiment(
    args: argparse.Namespace,
    name: str,
    kind: str,
    results: Sequence[object],
    task_keys: Sequence[str] = (),
) -> None:
    scenario = ExperimentScenario(name, kind)
    _record_payload(args, scenario.as_payload(results, task_keys=task_keys))


def _cmd_list(_: argparse.Namespace) -> int:
    for name, description in _EXPERIMENT_DESCRIPTIONS.items():
        print(f"  {name:<18s} {description}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    _print(analytic_summary_table().render_ascii())
    runner = SweepRunner(parallel=args.jobs > 1, max_workers=args.jobs)
    experiment = run_summary_experiment(quick=args.quick, runner=runner)
    records = experiment.records()
    store = _store_from_args(args)
    if store is not None:
        # Record, then render from the queried-back store rows: the table the
        # user sees *is* the recorded history.
        receipt = ingest_payload(store, experiment.as_payload())
        records = query(store, experiment="summary", run_id=receipt.run_id)
    _print(summary_table(records).render_ascii())
    if not experiment.all_agree:
        print("WARNING: at least one measured classification disagrees with the paper")
        return 1
    return 0


def _cmd_kernel(name: str, args: argparse.Namespace) -> int:
    factory, scale, memories, base_memory = _KERNEL_COMMANDS[name]
    kernel = factory()
    experiment = run_intensity_experiment(
        kernel, memories, scale, base_memory=base_memory
    )
    _print(experiment.table().render_ascii())
    _print(experiment.rebalance_table().render_ascii())
    print(f"fitted intensity exponent : {experiment.intensity_exponent:.3f}")
    print(f"predicted law             : {experiment.predicted_law_label}")
    if experiment.rebalancable:
        print(f"measured growth exponent  : {experiment.memory_growth_exponent:.3f}")
    else:
        print("measured growth exponent  : infeasible (I/O bounded)")
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    runner = _task_runner_from_args(args)
    task = figure2_task(n_points=args.points, block_points=args.block)
    result = runner.run_one(task)
    _print(render_decomposition(result))
    _print(result.table().render_ascii())
    print(f"correct against the direct DFT: {result.correct}")
    _print_task_cache(runner)
    _record_experiment(args, "cli-figure2", "figure2", [result], [task.key()])
    return 0 if result.correct else 1


def _cmd_arrays(args: argparse.Namespace) -> int:
    runner = _task_runner_from_args(args)
    linear_kwargs = {} if args.lengths is None else {"lengths": args.lengths}
    mesh_kwargs = {} if args.sides is None else {"sides": args.sides}
    tasks = [
        linear_array_task(**linear_kwargs),
        mesh_array_task(**mesh_kwargs),
        mesh_array_task(
            **mesh_kwargs,
            intensity=PowerLawIntensity(exponent=0.25),
            computation_label="4-d grid relaxation (law alpha^4)",
        ),
    ]
    experiments = runner.run(tasks)
    for experiment in experiments:
        _print(experiment.table().render_ascii())
    _print_task_cache(runner)
    names = ("cli-linear-array", "cli-mesh-array", "cli-mesh-array-grid4d")
    kinds = ("linear-array", "mesh-array", "mesh-array")
    for name, kind, task, experiment in zip(names, kinds, tasks, experiments):
        _record_experiment(args, name, kind, [experiment], [task.key()])
    return 0


def _cmd_systolic(args: argparse.Namespace) -> int:
    runner = _task_runner_from_args(args)
    task = systolic_task(
        order=args.order,
        batches=args.batches,
        engine=args.engine,
        matvec_length=args.matvec_length,
        qr_order=args.qr_order,
        qr_rows=args.qr_rows,
    )
    experiment = runner.run_one(task)
    _print(experiment.table().render_ascii())
    _print_task_cache(runner)
    _record_experiment(args, "cli-systolic", "systolic", [experiment], [task.key()])
    correct = (
        experiment.matmul_correct
        and experiment.matvec_correct
        and experiment.qr_correct
    )
    return 0 if correct else 1


def _cmd_pebble(args: argparse.Namespace) -> int:
    runner = _task_runner_from_args(args)
    experiment = run_pebble_experiment(
        matmul_order=args.matmul_order, fft_points=args.fft_points, runner=runner
    )
    _print(experiment.table().render_ascii())
    _print_task_cache(runner)
    _record_experiment(args, "cli-pebble", "pebble", experiment.points)
    return 0 if experiment.all_above_lower_bound else 1


def _cmd_warp(args: argparse.Namespace) -> int:
    runner = _task_runner_from_args(args)
    task = warp_task()
    experiment = runner.run_one(task)
    _print(experiment.cell_table().render_ascii())
    _print(experiment.array_table().render_ascii())
    _print(experiment.alpha_table().render_ascii())
    _print_task_cache(runner)
    _record_experiment(args, "cli-warp", "warp", [experiment], [task.key()])
    return 0


# ---------------------------------------------------------------------------
# The scenario-runtime subcommands (`repro sweep`, `repro suite`).
# ---------------------------------------------------------------------------


def _default_cache_dir() -> Path:
    return Path(
        os.environ.get("REPRO_CACHE_DIR", Path.home() / ".cache" / "repro")
    )


def _runner_from_args(args: argparse.Namespace, *, parallel_default: bool) -> SweepRunner:
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or _default_cache_dir())
    parallel = parallel_default
    if args.serial:
        parallel = False
    elif args.jobs is not None:
        parallel = args.jobs > 1
    return SweepRunner(
        parallel=parallel,
        max_workers=args.jobs,
        cache=cache,
        verify=getattr(args, "verify", False),
    )


def _task_runner_from_args(
    args: argparse.Namespace, *, parallel_default: bool = True
) -> TaskRunner:
    """A :class:`TaskRunner` for the experiment subcommands.

    The experiment-task cache lives under the ``tasks/`` subdirectory of the
    shared cache root, mirroring :func:`repro.runtime.task_runner_for`.
    """
    cache = None
    if not args.no_cache:
        root = Path(args.cache_dir or _default_cache_dir())
        cache = TaskCache(root / "tasks")
    parallel = parallel_default
    if args.serial:
        parallel = False
    elif args.jobs is not None:
        parallel = args.jobs > 1
    return TaskRunner(parallel=parallel, max_workers=args.jobs, cache=cache)


def _print_task_cache(runner: TaskRunner) -> None:
    if runner.cache is not None:
        stats = runner.cache.stats
        print(f"cache: {stats.hits} hits, {stats.misses} misses ({runner.cache.root})")


def _add_task_runtime_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: one per core)"
    )
    parser.add_argument(
        "--serial", action="store_true", help="run every task in-process, one at a time"
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )


def _add_runtime_options(parser: argparse.ArgumentParser) -> None:
    _add_task_runtime_options(parser)
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    parser.add_argument("--csv", type=Path, default=None, help="write results as CSV")


def _parse_memory_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of integers, got {text!r}"
        ) from exc


def _parse_nonempty_int_list(text: str) -> tuple[int, ...]:
    """Like :func:`_parse_memory_list`, but an empty list is a usage error.

    ``sweep --memory ,`` deliberately passes the empty grid through so the
    runtime rejects it; the array-size flags have no such downstream check
    and would otherwise crash building the task name.
    """
    values = _parse_memory_list(text)
    if not values:
        raise argparse.ArgumentTypeError(
            f"expected at least one integer, got {text!r}"
        )
    return values


def _write_rows_csv(path: Path, rows: list[dict]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def _cmd_sweep(args: argparse.Namespace) -> int:
    defaults = _DEFAULT_SWEEPS.get(args.kernel)
    # `--memory ,` (explicit but empty) must not silently fall back to the
    # default grid; let the runtime reject the empty grid instead.
    memory_sizes = (
        args.memory
        if args.memory is not None
        else (defaults[0] if defaults else None)
    )
    scale = args.scale if args.scale is not None else (defaults[1] if defaults else None)
    if memory_sizes is None or scale is None:
        print(f"kernel {args.kernel!r} has no default grid; pass --memory and --scale")
        return 2
    memory_sizes = normalize_memory_sizes(memory_sizes)

    if args.analytic:
        return _cmd_sweep_analytic(args, memory_sizes)

    runner = _runner_from_args(args, parallel_default=False)
    kernel = build_kernel(args.kernel)
    sweep = runner.run_default(kernel, memory_sizes, scale)
    rows = sweep.rows()

    table = Table(
        columns=("memory_words", "compute_ops", "io_words", "intensity"),
        title=f"{kernel.name}: measured intensity F(M) [runtime sweep]",
    )
    for row in rows:
        table.add_row(
            row["memory_words"], row["compute_ops"], row["io_words"], row["intensity"]
        )
    _print(table.render_ascii())
    try:
        fit = {
            "power_law_exponent": sweep.power_law_fit().exponent,
            "best_model": sweep.best_model(),
            "computation_class": sweep.classification().computation_class.value,
        }
    except ReproError as exc:
        # Law fitting needs three or more points; the measurements themselves
        # are still worth printing and exporting.
        fit = None
        print(f"fit                       : unavailable ({exc})")
    if fit is not None:
        print(f"fitted intensity exponent : {fit['power_law_exponent']:.3f}")
        print(f"best model                : {fit['best_model']}")
    if runner.cache is not None:
        stats = runner.cache.stats
        print(f"cache                     : {stats.hits} hits, {stats.misses} misses")

    payload = {
        "schema": "repro-sweep-result/v1",
        "kernel": args.kernel,
        "scale": scale,
        "memory_sizes": list(sweep.memory_sizes),
        "rows": rows,
        "fit": fit,
    }
    _record_payload(args, payload)
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote JSON to {args.json}")
    if args.csv:
        _write_rows_csv(args.csv, rows)
        print(f"wrote CSV to {args.csv}")
    return 0


def _cmd_sweep_analytic(
    args: argparse.Namespace, memory_sizes: tuple[int, ...]
) -> int:
    # The registry may know a kernel under a different name than the CLI
    # factory (e.g. sparse_matvec -> spmv); resolve through the kernel class.
    registry_name = build_kernel(args.kernel).registry_name or args.kernel
    spec = get_registry_spec(registry_name)
    costs = cost_grid(spec, [args.problem_size], memory_sizes)
    intensities = spec.batch_intensity(memory_sizes)

    table = Table(
        columns=("memory_words", "model F(M)", "cost intensity", "compute_ops", "io_words"),
        title=f"{spec.title}: analytic cost model at N={args.problem_size} (one array pass)",
    )
    for j, memory in enumerate(memory_sizes):
        table.add_row(
            memory,
            float(intensities[j]),
            float(costs.intensity[0, j]),
            float(costs.compute_ops[0, j]),
            float(costs.io_words[0, j]),
        )
    _print(table.render_ascii())

    alphas = (1.5, 2.0, 3.0, 4.0)
    grown = rebalance_grid(spec.law, float(memory_sizes[0]), alphas)
    law_table = Table(
        columns=("alpha", "memory_new"),
        title=f"{spec.title}: {spec.law_label} from M_old={memory_sizes[0]}",
    )
    for alpha, memory_new in zip(alphas, grown):
        law_table.add_row(alpha, float(memory_new))
    _print(law_table.render_ascii())

    rows = [
        {
            "memory_words": float(memory),
            "model_intensity": float(intensities[j]),
            "cost_intensity": float(costs.intensity[0, j]),
            "compute_ops": float(costs.compute_ops[0, j]),
            "io_words": float(costs.io_words[0, j]),
        }
        for j, memory in enumerate(memory_sizes)
    ]
    payload = {
        "schema": "repro-sweep-analytic/v1",
        "kernel": args.kernel,
        "problem_size": args.problem_size,
        "rows": rows,
        "rebalance": [
            {"alpha": alpha, "memory_new": float(memory_new)}
            for alpha, memory_new in zip(alphas, grown)
        ],
    }
    _record_payload(args, payload)
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote JSON to {args.json}")
    if args.csv:
        _write_rows_csv(args.csv, rows)
        print(f"wrote CSV to {args.csv}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    if args.list:
        for name in suite_names():
            suite = get_suite(name)
            print(f"  {name:<8s} {len(suite.scenarios):2d} scenarios  {suite.description}")
        return 0
    name = "quick" if args.quick else (args.name or "quick")
    suite = get_suite(name)
    runner = _runner_from_args(args, parallel_default=True)
    result = run_suite(suite, runner)

    table = Table(
        columns=("scenario", "kernel", "points", "exponent", "best model", "class"),
        title=f"suite {suite.name!r}: {suite.description}",
    )
    for scenario_result in result.results:
        fit = scenario_result.fit()
        table.add_row(
            scenario_result.scenario.name,
            scenario_result.scenario.kernel,
            len(scenario_result.sweep.memory_sizes),
            f"{fit['power_law_exponent']:.3f}",
            fit["best_model"],
            fit["computation_class"],
        )
    _print(table.render_ascii())

    if result.experiments:
        experiments_table = Table(
            columns=("experiment", "kind", "tasks", "headline"),
            title=f"suite {suite.name!r}: experiment tasks",
        )
        for experiment_result in result.experiments:
            experiments_table.add_row(
                experiment_result.scenario.name,
                experiment_result.scenario.experiment,
                len(experiment_result.results),
                experiment_result.headline(),
            )
        _print(experiments_table.render_ascii())

    mode = "parallel" if runner.parallel else "serial"
    print(
        f"{result.runtime['points']} points + "
        f"{result.runtime['experiment_tasks']} experiment tasks "
        f"in {result.elapsed_seconds:.2f}s ({mode}, {runner.max_workers} workers)"
    )
    if runner.cache is not None:
        stats = runner.cache.stats
        print(f"cache: {stats.hits} hits, {stats.misses} misses ({runner.cache.root})")
        store = store_for(runner)
        if store is not None:
            print(f"recorded run {result.run_id} [{store.root}]")
    if result.runtime.get("task_cache"):
        task_stats = result.runtime["task_cache"]
        print(
            f"task cache: {task_stats['hits']} hits, {task_stats['misses']} misses"
        )
    if args.json:
        print(f"wrote JSON to {result.write_json(args.json)}")
    if args.csv:
        print(f"wrote CSV to {result.write_csv(args.csv)}")
    return 0


# ---------------------------------------------------------------------------
# The service subcommands (`repro serve`, `repro submit`, `repro cache`).
# ---------------------------------------------------------------------------


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(value)} B"  # pragma: no cover - loop always returns


def _cmd_serve(args: argparse.Namespace) -> int:
    import contextlib
    import signal
    import threading

    from repro.faults.injector import FaultInjector, install, install_from_env
    from repro.service import JobService, serve

    # The CLI flag wins over the environment; both off leaves the injector
    # uninstalled (the common case -- fault checks are then a None test).
    if args.faults:
        install(FaultInjector.from_spec(args.faults, seed=args.faults_seed))
    else:
        install_from_env()

    if args.log_json:
        from repro.obs.spans import configure_json_logging

        configure_json_logging()

    cache_dir = None if args.no_cache else (args.cache_dir or _default_cache_dir())
    parallel = not args.serial and (args.jobs is None or args.jobs > 1)
    service = JobService(
        cache_dir=cache_dir,
        state_path=args.state_file,
        parallel=parallel,
        max_workers=args.jobs,
        workers=args.workers,
        max_queue_depth=args.max_queue,
        spans=not args.no_spans,
    )
    server = serve(args.host, args.port, service)
    service.start()

    def _graceful(signum: int, frame: object) -> None:
        # SIGTERM = graceful drain: stop admitting (503), give in-flight
        # work args.drain_timeout seconds to finish and journal, then shut
        # the listener down.  Runs on a helper thread because shutdown()
        # would deadlock if called from inside serve_forever's loop; the
        # signal handler itself returns immediately.  SIGINT (Ctrl-C)
        # stays an immediate stop -- interactive users want out *now* and
        # the journal recovers anything interrupted.
        threading.Thread(
            target=lambda: (service.drain(args.drain_timeout), server.shutdown()),
            name="repro-drain",
            daemon=True,
        ).start()

    with contextlib.suppress(ValueError):  # not the main thread (embedded)
        signal.signal(signal.SIGTERM, _graceful)

    cache_note = f"cache {cache_dir}" if cache_dir else "cache disabled"
    queue_note = (
        f", queue limit {args.max_queue}" if args.max_queue is not None else ""
    )
    print(
        f"repro service listening on http://{args.host}:{server.port} "
        f"({args.workers} workers, {cache_note}{queue_note})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


def _submit_params(args: argparse.Namespace) -> dict:
    extra = {}
    if args.params:
        try:
            extra = json.loads(args.params)
        except json.JSONDecodeError as exc:
            raise ReproError(f"--params must be a JSON object: {exc}") from exc
        if not isinstance(extra, dict):
            raise ReproError(f"--params must be a JSON object, got {extra!r}")
    if args.kind == "suite":
        return {"suite": args.spec, **extra}
    if args.kind == "experiment":
        return {"experiment": args.spec, "params": extra}
    params = {"kernel": args.spec, **extra}
    defaults = _DEFAULT_SWEEPS.get(args.spec)
    if defaults is not None and "memory_sizes" not in params:
        params["memory_sizes"] = list(defaults[0])
    if defaults is not None and not params.get("analytic") and "scale" not in params:
        params["scale"] = defaults[1]
    return params


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port, timeout=min(args.timeout, 30.0))
    job = client.submit(args.kind, _submit_params(args), trace_id=args.trace)
    note = f" (deduplicated into {job['deduped_into']})" if job["deduped_into"] else ""
    print(
        f"job {job['id']} submitted: {args.kind} {args.spec}{note} "
        f"[trace {job['trace_id']}]"
    )
    if args.no_wait:
        return 0
    document = client.wait(job["id"], timeout=args.timeout)
    print(f"job {job['id']} done in {document['elapsed_seconds']:.2f}s")
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(document["result"], indent=2) + "\n")
        print(f"wrote JSON to {args.json}")
    else:
        print(json.dumps(document["result"], indent=2))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.spans import chrome_trace, render_tree, spans_payload
    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    document = client.trace(args.trace_id)
    if args.action == "show":
        print(
            f"trace {document['trace_id']}: {document['span_count']} spans, "
            f"{document['roots']} roots, depth {document['depth']}"
        )
        print()
        print(render_tree(document["tree"]))
        return 0
    # export: Chrome/Perfetto trace-event JSON (load in chrome://tracing or
    # ui.perfetto.dev), or the raw repro-spans/v1 document for `repro ingest`.
    if args.format == "chrome":
        payload = chrome_trace(document["spans"])
    else:
        payload = spans_payload(document["trace_id"], document["spans"])
    text = json.dumps(payload, indent=2) + "\n"
    if args.out is None:
        print(text, end="")
    else:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text)
        print(
            f"wrote {args.format} trace ({document['span_count']} spans) "
            f"to {args.out}"
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    root = Path(args.cache_dir or _default_cache_dir())
    results = ResultCache(root)
    tasks = TaskCache(root / "tasks")
    store = ResultStore(root / "store")
    if args.action == "clear":
        removed = results.clear() + tasks.clear()
        if args.keep_store:
            print(f"removed {removed} cache entries from {root} (store kept)")
        else:
            runs = store.clear()
            print(f"removed {removed} cache entries and {runs} store runs from {root}")
        return 0
    result_entries, task_entries = len(results), len(tasks)
    result_bytes = results.disk_usage_bytes()
    task_bytes = tasks.disk_usage_bytes()
    store_runs, store_records = store.run_count(), len(store)
    store_bytes = store.disk_usage_bytes()
    print(f"cache root    : {root}")
    print(
        f"sweep points  : {result_entries} entries, {_format_bytes(result_bytes)}"
    )
    print(
        f"task results  : {task_entries} entries, {_format_bytes(task_bytes)}"
    )
    print(
        f"result store  : {store_runs} runs, {store_records} records, "
        f"{_format_bytes(store_bytes)}"
    )
    print(
        f"total         : {result_entries + task_entries} entries + "
        f"{store_runs} runs, "
        f"{_format_bytes(result_bytes + task_bytes + store_bytes)}"
    )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    store = ResultStore(Path(args.cache_dir or _default_cache_dir()) / "store")
    for path in args.paths:
        receipt = ingest_file(store, path, reader=args.reader)
        status = "added" if receipt.added else "deduplicated"
        print(
            f"{path}: {status} run {receipt.run_id} "
            f"({receipt.record_count} records)"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.transforms import apply_transform, describe_transforms
    from repro.store.readers import describe_readers

    if args.list_transforms:
        table = records_table(
            describe_transforms(), columns=("transform", "description"),
            title="registered transforms",
        )
        _print(table.render_ascii())
        table = records_table(
            describe_readers(), columns=("reader", "schemas", "description"),
            title="registered readers",
        )
        _print(table.render_ascii())
        return 0

    store = ResultStore(Path(args.cache_dir or _default_cache_dir()) / "store")
    records = query(
        store,
        experiment=args.experiment,
        scenario=args.scenario,
        kernel=args.kernel,
        suite=args.suite,
        run_id=args.run,
    )
    transform = "regressions" if args.regressions else args.transform
    if transform:
        records = apply_transform(transform, records)
    if args.group:
        records = group_counts(records, args.group)
    if args.limit is not None:
        records = records[len(records) - min(args.limit, len(records)) :]

    regressed = transform == "regressions" and any(
        record.get("regression") for record in records
    )
    if args.format == "json":
        document = report_document(
            records,
            transform=transform,
            filters={
                "experiment": args.experiment,
                "scenario": args.scenario,
                "kernel": args.kernel,
                "suite": args.suite,
                "run_id": args.run,
                "group": args.group,
                "limit": args.limit,
            },
        )
        print(json.dumps(document, indent=2))
    else:
        columns = args.columns.split(",") if args.columns else None
        title = f"result store: {len(records)} records [{store.root}]"
        table = records_table(records, columns=columns, title=title)
        if args.format == "markdown":
            print(table.render_markdown())
        elif args.format == "csv":
            print(table.render_csv(), end="")
        else:
            _print(table.render_ascii())
    if regressed:
        print("WARNING: at least one bench case regressed past the threshold")
        return 1
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.obs.doctor import run_doctor

    cache_dir = None if args.no_cache else (args.cache_dir or _default_cache_dir())
    report = run_doctor(
        cache_dir=cache_dir,
        state_path=args.state_file,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        max_job_age=args.max_job_age,
    )
    if args.json == "-":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        if args.json:
            path = Path(args.json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        _print(report.table().render_ascii())
        if args.json:
            print(f"wrote JSON to {args.json}")
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the results of Kung's balanced-architecture analysis.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help=_EXPERIMENT_DESCRIPTIONS["list"])

    summary = subparsers.add_parser("summary", help=_EXPERIMENT_DESCRIPTIONS["summary"])
    summary.add_argument(
        "--quick", action="store_true", help="smaller problems (seconds instead of tens of seconds)"
    )
    summary.add_argument(
        "--jobs", type=int, default=1, help="fan kernel executions across N worker processes"
    )
    summary.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cache root whose result store records the run "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    summary.add_argument(
        "--no-cache", action="store_true", help="do not record the run in the result store"
    )

    sweep = subparsers.add_parser("sweep", help=_EXPERIMENT_DESCRIPTIONS["sweep"])
    sweep.add_argument("kernel", choices=sorted(kernel_factories()))
    sweep.add_argument(
        "--memory", type=_parse_memory_list, default=None,
        help="comma-separated memory sizes (default: the kernel's standard grid)",
    )
    sweep.add_argument("--scale", type=int, default=None, help="problem scale")
    sweep.add_argument(
        "--analytic", action="store_true",
        help="evaluate the registry cost model over the grid instead of running the kernel",
    )
    sweep.add_argument(
        "--problem-size", type=int, default=4096,
        help="problem size N for --analytic cost tables",
    )
    sweep.add_argument(
        "--verify", action="store_true",
        help="check every execution against the reference implementation (disables the cache)",
    )
    _add_runtime_options(sweep)

    suite = subparsers.add_parser("suite", help=_EXPERIMENT_DESCRIPTIONS["suite"])
    suite.add_argument(
        "name", nargs="?", default=None,
        help="suite to run (see --list); defaults to 'quick'",
    )
    suite.add_argument("--quick", action="store_true", help="shorthand for the 'quick' suite")
    suite.add_argument("--list", action="store_true", help="list the named suites and exit")
    _add_runtime_options(suite)

    serve = subparsers.add_parser("serve", help=_EXPERIMENT_DESCRIPTIONS["serve"])
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8035, help="bind port (0 picks one)")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="job worker threads draining the queue (default: 2)",
    )
    serve.add_argument(
        "--state-file", type=Path, default=None,
        help="JSON-lines job journal for restart recovery (default: none)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None,
        help="bound the scheduler queue; saturated submissions get 429 + "
        "Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds SIGTERM gives in-flight jobs to finish before the "
        "listener stops (default: 30)",
    )
    serve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="chaos testing: inject faults per SPEC, e.g. "
        "'task-crash:count=2;slow-task:rate=0.2,delay=0.05' "
        "(overrides $REPRO_FAULTS; see repro.faults)",
    )
    serve.add_argument(
        "--faults-seed", type=int, default=0,
        help="seed for the fault injector's deterministic RNGs (default: 0)",
    )
    serve.add_argument(
        "--log-json", action="store_true",
        help="structured JSON-lines logging on stderr, each line stamped "
        "with the trace/span IDs bound on the emitting thread",
    )
    serve.add_argument(
        "--no-spans", action="store_true",
        help="disable span collection (GET /trace/{id} then returns 404)",
    )
    _add_task_runtime_options(serve)

    submit = subparsers.add_parser("submit", help=_EXPERIMENT_DESCRIPTIONS["submit"])
    submit.add_argument("kind", choices=("sweep", "experiment", "suite"))
    submit.add_argument(
        "spec",
        help="suite name, experiment kind, or kernel name (per the job kind)",
    )
    submit.add_argument(
        "--params", default=None,
        help="extra job parameters as a JSON object (e.g. "
        '\'{"memory_sizes": [8, 32], "scale": 16}\')',
    )
    submit.add_argument("--host", default="127.0.0.1", help="service address")
    submit.add_argument("--port", type=int, default=8035, help="service port")
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without polling for the result",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="seconds to wait for the result (default: 600)",
    )
    submit.add_argument(
        "--json", type=Path, default=None,
        help="write the result payload to this file instead of stdout",
    )
    submit.add_argument(
        "--trace", default=None,
        help="trace ID to stamp on the job (4..64 chars of [A-Za-z0-9._-]; "
        "minted by the service when omitted)",
    )

    trace = subparsers.add_parser("trace", help=_EXPERIMENT_DESCRIPTIONS["trace"])
    trace.add_argument("action", choices=("show", "export"))
    trace.add_argument(
        "trace_id",
        help="trace ID (the one submitted via --trace, or the service-minted "
        "one echoed by `repro submit`)",
    )
    trace.add_argument("--host", default="127.0.0.1", help="service address")
    trace.add_argument("--port", type=int, default=8035, help="service port")
    trace.add_argument(
        "--timeout", type=float, default=30.0,
        help="HTTP timeout in seconds (default: 30)",
    )
    trace.add_argument(
        "--format", choices=("chrome", "spans"), default="chrome",
        help="export format: Chrome/Perfetto trace-event JSON (default) or "
        "the raw repro-spans/v1 document",
    )
    trace.add_argument(
        "--out", type=Path, default=None,
        help="write the export to this file instead of stdout",
    )

    cache = subparsers.add_parser("cache", help=_EXPERIMENT_DESCRIPTIONS["cache"])
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache.add_argument(
        "--keep-store", action="store_true",
        help="on clear, keep the recorded result history (only drop the caches)",
    )

    report = subparsers.add_parser("report", help=_EXPERIMENT_DESCRIPTIONS["report"])
    report.add_argument(
        "--experiment", default=None, help="record kind (sweep, fit, systolic, ...)"
    )
    report.add_argument("--scenario", default=None, help="scenario name, exact or prefix")
    report.add_argument("--kernel", default=None, help="kernel name")
    report.add_argument("--suite", default=None, help="suite name the run recorded under")
    report.add_argument("--run", default=None, help="run ID (see the run_id column)")
    report.add_argument(
        "--transform", default=None,
        help="apply a named derived-metric pass (see --list-transforms)",
    )
    report.add_argument(
        "--regressions", action="store_true",
        help="shorthand for --transform regressions; exits 1 if any case regressed",
    )
    report.add_argument(
        "--group", default=None, metavar="COLUMN",
        help="collapse to record counts per value of COLUMN",
    )
    report.add_argument(
        "--columns", default=None,
        help="comma-separated columns for the table output (default: auto)",
    )
    report.add_argument(
        "--limit", type=int, default=None, help="keep only the last N rows"
    )
    report.add_argument(
        "--format", choices=("table", "json", "csv", "markdown"), default="table",
    )
    report.add_argument(
        "--list-transforms", action="store_true",
        help="list the registered transforms and readers, then exit",
    )
    report.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cache root holding the result store (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )

    ingest = subparsers.add_parser("ingest", help=_EXPERIMENT_DESCRIPTIONS["ingest"])
    ingest.add_argument(
        "paths", nargs="+", type=Path, metavar="PATH",
        help="result JSON documents (suite results, sweep exports, BENCH_*.json)",
    )
    ingest.add_argument(
        "--reader", default=None,
        help="force a reader instead of auto-detecting from the payload schema",
    )
    ingest.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cache root holding the result store (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )

    doctor = subparsers.add_parser("doctor", help=_EXPERIMENT_DESCRIPTIONS["doctor"])
    doctor.add_argument(
        "--cache-dir", type=Path, default=None,
        help="cache directory to check (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    doctor.add_argument(
        "--no-cache", action="store_true", help="skip the cache-integrity checks"
    )
    doctor.add_argument(
        "--state-file", type=Path, default=None,
        help="job journal to check for replayability (default: none)",
    )
    doctor.add_argument("--host", default="127.0.0.1", help="service address")
    doctor.add_argument(
        "--port", type=int, default=None,
        help="probe a running service's worker liveness at this port",
    )
    doctor.add_argument(
        "--jobs", type=int, default=None,
        help="intended worker-pool size, checked against the CPU affinity mask",
    )
    doctor.add_argument(
        "--max-job-age", type=float, default=300.0,
        help="warn on open jobs without a state transition for this many "
        "seconds (default: 300)",
    )
    doctor.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the repro-doctor/v1 JSON report (to stdout, or to PATH)",
    )

    for name in _KERNEL_COMMANDS:
        subparsers.add_parser(name, help=_EXPERIMENT_DESCRIPTIONS[name])

    figure2 = subparsers.add_parser("figure2", help=_EXPERIMENT_DESCRIPTIONS["figure2"])
    figure2.add_argument("--points", type=int, default=16, help="FFT size N (power of two)")
    figure2.add_argument("--block", type=int, default=4, help="block size in complex points")
    _add_task_runtime_options(figure2)

    arrays = subparsers.add_parser("arrays", help=_EXPERIMENT_DESCRIPTIONS["arrays"])
    arrays.add_argument(
        "--lengths", type=_parse_nonempty_int_list, default=None,
        help="comma-separated linear-array lengths for E10 (default: 2..64)",
    )
    arrays.add_argument(
        "--sides", type=_parse_nonempty_int_list, default=None,
        help="comma-separated mesh sides for E11 (default: 2..32)",
    )
    _add_task_runtime_options(arrays)

    systolic = subparsers.add_parser("systolic", help=_EXPERIMENT_DESCRIPTIONS["systolic"])
    systolic.add_argument("--order", type=int, default=8, help="matmul mesh order")
    systolic.add_argument("--batches", type=int, default=24)
    systolic.add_argument(
        "--engine", choices=("reference", "fast"), default="fast",
        help="cycle-level engine: validating scalar loops or the vectorized "
        "wavefront engine (bitwise identical, default)",
    )
    systolic.add_argument(
        "--matvec-length", type=int, default=None,
        help="linear matvec array length (default: --order)",
    )
    systolic.add_argument(
        "--qr-order", type=int, default=None,
        help="triangular QR array columns (default: --order)",
    )
    systolic.add_argument(
        "--qr-rows", type=int, default=None,
        help="rows streamed through the QR array (default: batches * qr order)",
    )
    _add_task_runtime_options(systolic)

    pebble = subparsers.add_parser("pebble", help=_EXPERIMENT_DESCRIPTIONS["pebble"])
    pebble.add_argument(
        "--matmul-order", type=int, default=6, help="matrix order of the matmul DAG"
    )
    pebble.add_argument(
        "--fft-points", type=int, default=64, help="points of the FFT DAG (power of two)"
    )
    _add_task_runtime_options(pebble)

    warp = subparsers.add_parser("warp", help=_EXPERIMENT_DESCRIPTIONS["warp"])
    _add_task_runtime_options(warp)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    handlers: dict[str, Callable[[argparse.Namespace], int]] = {
        "list": _cmd_list,
        "summary": _cmd_summary,
        "sweep": _cmd_sweep,
        "suite": _cmd_suite,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "trace": _cmd_trace,
        "cache": _cmd_cache,
        "report": _cmd_report,
        "ingest": _cmd_ingest,
        "doctor": _cmd_doctor,
        "figure2": _cmd_figure2,
        "arrays": _cmd_arrays,
        "systolic": _cmd_systolic,
        "pebble": _cmd_pebble,
        "warp": _cmd_warp,
    }
    try:
        if args.command in _KERNEL_COMMANDS:
            return _cmd_kernel(args.command, args)
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

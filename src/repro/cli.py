"""Command-line interface: regenerate the paper's artifacts from a shell.

The CLI is a thin wrapper over :mod:`repro.experiments`; each subcommand runs
one experiment and prints its tables.

Examples
--------
::

    python -m repro list                     # what can be regenerated
    python -m repro summary --quick          # E1, small problem sizes
    python -m repro matmul                   # E2 intensity + rebalancing curve
    python -m repro figure2                  # the Figure 2 decomposition
    python -m repro arrays                   # E10/E11 sizing tables
    python -m repro systolic                 # E12 cycle-level simulations
    python -m repro pebble                   # E9 pebble game vs lower bounds
    python -m repro warp                     # E13 Warp case study
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence

from repro.core.intensity import PowerLawIntensity
from repro.experiments.arrays_section4 import (
    run_linear_array_experiment,
    run_mesh_array_experiment,
    run_systolic_experiment,
)
from repro.experiments.fft_figure2 import render_decomposition, run_figure2_experiment
from repro.experiments.intensity import run_intensity_experiment
from repro.experiments.pebble_bounds import run_pebble_experiment
from repro.experiments.summary import analytic_summary_table, run_summary_experiment
from repro.experiments.warp_study import run_warp_experiment
from repro.kernels import (
    BlockedFFT,
    BlockedLUTriangularization,
    BlockedMatrixMultiply,
    ExternalMergeSort,
    GridRelaxation,
    StreamingMatrixVectorProduct,
    StreamingTriangularSolve,
)

__all__ = ["main", "build_parser"]


_KERNEL_COMMANDS = {
    "matmul": (BlockedMatrixMultiply, 48, (12, 27, 48, 108, 192, 300, 432), None),
    "triangularization": (BlockedLUTriangularization, 48, (12, 27, 48, 108, 192, 300), None),
    "grid2d": (lambda: GridRelaxation(dimension=2), 7, (100, 256, 576, 1296, 2704), None),
    "grid3d": (lambda: GridRelaxation(dimension=3), 7, (512, 1728, 4096, 13824), None),
    "fft": (BlockedFFT, 12, (4, 8, 16, 32, 128, 8192), 32),
    "sorting": (ExternalMergeSort, 16384, (8, 32, 128, 512), 32),
    "matvec": (StreamingMatrixVectorProduct, 64, (8, 32, 128, 512, 2048), None),
    "triangular_solve": (StreamingTriangularSolve, 64, (8, 32, 128, 512, 2048), None),
}

_EXPERIMENT_DESCRIPTIONS = {
    "summary": "E1: the Section 3 summary table (analytic and measured)",
    "figure2": "E6: the Figure 2 FFT decomposition (N=16, M=4)",
    "arrays": "E10/E11: per-cell memory sizing for linear arrays and meshes",
    "systolic": "E12: cycle-level systolic matmul / matvec simulations",
    "pebble": "E9: red-blue pebble game vs Hong-Kung lower bounds",
    "warp": "E13: the CMU Warp machine case study",
    **{
        name: f"E2-E8: measured intensity and rebalancing curve for {name}"
        for name in _KERNEL_COMMANDS
    },
}


def _print(text: str) -> None:
    print(text)
    print()


def _cmd_list(_: argparse.Namespace) -> int:
    for name, description in _EXPERIMENT_DESCRIPTIONS.items():
        print(f"  {name:<18s} {description}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    _print(analytic_summary_table().render_ascii())
    experiment = run_summary_experiment(quick=args.quick)
    _print(experiment.table().render_ascii())
    if not experiment.all_agree:
        print("WARNING: at least one measured classification disagrees with the paper")
        return 1
    return 0


def _cmd_kernel(name: str, args: argparse.Namespace) -> int:
    factory, scale, memories, base_memory = _KERNEL_COMMANDS[name]
    kernel = factory()
    experiment = run_intensity_experiment(
        kernel, memories, scale, base_memory=base_memory
    )
    _print(experiment.table().render_ascii())
    _print(experiment.rebalance_table().render_ascii())
    print(f"fitted intensity exponent : {experiment.intensity_exponent:.3f}")
    print(f"predicted law             : {experiment.predicted_law_label}")
    if experiment.rebalancable:
        print(f"measured growth exponent  : {experiment.memory_growth_exponent:.3f}")
    else:
        print("measured growth exponent  : infeasible (I/O bounded)")
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    result = run_figure2_experiment(n_points=args.points, block_points=args.block)
    _print(render_decomposition(result))
    _print(result.table().render_ascii())
    print(f"correct against the direct DFT: {result.correct}")
    return 0 if result.correct else 1


def _cmd_arrays(args: argparse.Namespace) -> int:
    _print(run_linear_array_experiment().table().render_ascii())
    _print(run_mesh_array_experiment().table().render_ascii())
    _print(
        run_mesh_array_experiment(
            intensity=PowerLawIntensity(exponent=0.25),
            computation_label="4-d grid relaxation (law alpha^4)",
        )
        .table()
        .render_ascii()
    )
    return 0


def _cmd_systolic(args: argparse.Namespace) -> int:
    experiment = run_systolic_experiment(order=args.order, batches=args.batches)
    _print(experiment.table().render_ascii())
    return 0 if (experiment.matmul_correct and experiment.matvec_correct) else 1


def _cmd_pebble(args: argparse.Namespace) -> int:
    experiment = run_pebble_experiment()
    _print(experiment.table().render_ascii())
    return 0 if experiment.all_above_lower_bound else 1


def _cmd_warp(args: argparse.Namespace) -> int:
    experiment = run_warp_experiment()
    _print(experiment.cell_table().render_ascii())
    _print(experiment.array_table().render_ascii())
    _print(experiment.alpha_table().render_ascii())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the results of Kung's balanced-architecture analysis.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help=_EXPERIMENT_DESCRIPTIONS["summary"] and "list experiments")

    summary = subparsers.add_parser("summary", help=_EXPERIMENT_DESCRIPTIONS["summary"])
    summary.add_argument(
        "--quick", action="store_true", help="smaller problems (seconds instead of tens of seconds)"
    )

    for name in _KERNEL_COMMANDS:
        subparsers.add_parser(name, help=_EXPERIMENT_DESCRIPTIONS[name])

    figure2 = subparsers.add_parser("figure2", help=_EXPERIMENT_DESCRIPTIONS["figure2"])
    figure2.add_argument("--points", type=int, default=16, help="FFT size N (power of two)")
    figure2.add_argument("--block", type=int, default=4, help="block size in complex points")

    subparsers.add_parser("arrays", help=_EXPERIMENT_DESCRIPTIONS["arrays"])

    systolic = subparsers.add_parser("systolic", help=_EXPERIMENT_DESCRIPTIONS["systolic"])
    systolic.add_argument("--order", type=int, default=8)
    systolic.add_argument("--batches", type=int, default=24)

    subparsers.add_parser("pebble", help=_EXPERIMENT_DESCRIPTIONS["pebble"])
    subparsers.add_parser("warp", help=_EXPERIMENT_DESCRIPTIONS["warp"])
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    handlers: dict[str, Callable[[argparse.Namespace], int]] = {
        "list": _cmd_list,
        "summary": _cmd_summary,
        "figure2": _cmd_figure2,
        "arrays": _cmd_arrays,
        "systolic": _cmd_systolic,
        "pebble": _cmd_pebble,
        "warp": _cmd_warp,
    }
    if args.command in _KERNEL_COMMANDS:
        return _cmd_kernel(args.command, args)
    return handlers[args.command](args)

"""The HTTP front end: stdlib JSON endpoints over a :class:`JobService`.

API reference
-------------

``POST /jobs``
    Submit a job.  Request body: ``{"kind": "sweep" | "experiment" |
    "suite", "params": {...}, "trace": "<optional trace id>"}``; the
    ``X-Repro-Trace`` header is an equivalent (and preferred) way to supply
    the trace ID, and wins over the body field.  Responses: **201** with
    the job status document (see ``GET /jobs/{id}``; a deduplicated
    submission carries ``deduped_into`` naming the in-flight primary it
    attached to), **400** for malformed JSON, unknown kinds/params or an
    invalid trace ID, **413** when the body exceeds 1 MiB, **429** when the
    scheduler's bounded queue is saturated, **503** while the service is
    draining.  Both backpressure responses carry a ``Retry-After`` header
    (integral seconds, also ``retry_after`` in the JSON body) that
    :class:`~repro.service.client.ServiceClient` honors; a submission that
    deduplicates against in-flight work is always admitted, even saturated.

``GET /jobs``
    Every job, oldest submission first: ``{"jobs": [<status document>]}``.
    Always **200**.

``GET /jobs/{id}``
    One job's status document -- ``id``, ``kind``, ``params``, ``state``
    (``queued | running | done | failed``), ``key``, ``deduped_into``,
    ``trace_id``, ``error``, the coarse wall stamps (``created_at`` /
    ``started_at`` / ``finished_at`` / ``elapsed_seconds``), ``has_result``
    and the ``timeline``: one entry per state transition with ``state``,
    ``wall_time``, ``monotonic`` and ``seconds_in_state`` (time until the
    next transition; ``null`` on the last entry).  Never carries the result
    payload.  Responses: **200**, or **404** for an unknown id.

``GET /jobs/{id}/result``
    The result: **200** with ``{"id", "state", "elapsed_seconds",
    "result"}`` once done, **202** with ``{"id", "state"}`` while
    queued/running, **500** with ``{"id", "state", "error"}`` once failed,
    **404** for an unknown id.

``GET /healthz``
    Liveness: ``{"ok": true, "uptime_seconds", "workers",
    "workers_running", "draining", "queue_depth", "max_queue_depth",
    "jobs": {state: count}, "scheduler": {...}, "executor": {...},
    "pool": {"count", "alive", "restarts", "hung_workers"}}``.  Always
    **200** while the process can answer at all.

``GET /cache/stats``
    Both caches' hit/miss/store counters, entry counts and size on disk,
    the result store's run/record counts, plus the task runner's
    executed/cache_hits/deduped counters.  **200**.

``GET /results``
    The recorded-results report: the ``repro-report/v1`` document over the
    service's result store (every finished job is ingested, so the history
    is queryable across restarts).  Query parameters ``experiment``,
    ``scenario`` (exact or prefix), ``kernel``, ``suite`` and ``run``
    filter the raw records; ``transform`` applies a named derived-metric
    pass (``speedup-trend``, ``regressions``, ``classification-counts``,
    ...) after filtering; ``limit`` keeps the last N rows.  Responses:
    **200**, or **400** for an unknown transform or a bad ``limit``.  An
    uncached service reports ``count: 0``.

``GET /metrics``
    The process-local metrics registry (task runtime, caches, scheduler,
    job latencies).  **200** with Prometheus text exposition format
    (``Content-Type: text/plain; version=0.0.4``) by default, or the
    ``repro-metrics/v1`` JSON document with ``?format=json``.  **400** for
    an unknown ``format``.

``GET /trace/{id}``
    The span tree recorded for one trace ID: the ``repro-spans/v1``
    document with ``trace_id``, ``span_count``, ``depth``, the nested
    ``tree`` (each node a span dict plus ``children``) and the flat
    ``spans`` list.  Responses: **200**, or **404** when no spans are
    buffered for the trace (collection disabled, unknown trace, or evicted
    from the bounded buffer -- see ``repro_spans_dropped_total``).

Anything else is **404** ``{"error": ...}``.  All other responses are
``application/json``; error bodies are ``{"error": "<message>"}``.

Built on :class:`http.server.ThreadingHTTPServer` -- one thread per
connection, no third-party framework -- because the heavy lifting happens in
the worker pool; the HTTP layer only moves small JSON documents.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ReproError, ServiceError
from repro.obs.spans import json_logging_enabled
from repro.obs.trace import TRACE_HEADER
from repro.service.jobs import DONE, FAILED, Job
from repro.service.workers import JobService

__all__ = ["ServiceHTTPServer", "serve"]

#: Upper bound on request bodies; job submissions are small JSON documents.
MAX_BODY_BYTES = 1 << 20

_ACCESS_LOG = logging.getLogger("repro.service.http")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`JobService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: JobService) -> None:
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # Keep the access log quiet by default: the service is driven by tests,
    # benchmarks and CI where per-request stderr lines are pure noise.  With
    # ``repro serve --log-json`` the structured log is the point, so requests
    # go through the logging stack (each line then carries the submission's
    # trace/span IDs when one is bound on this thread).
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if json_logging_enabled():
            _ACCESS_LOG.info(format, *args)

    @property
    def service(self) -> JobService:
        return self.server.service

    # -- plumbing ------------------------------------------------------------

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self._send_bytes(status, body, "application/json")

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        body: dict[str, Any] = {"error": message}
        if retry_after is not None:
            body["retry_after"] = retry_after
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            # The header form is integral seconds per RFC 9110; the JSON
            # body keeps the fractional estimate for precise clients.
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("request body required", status=400)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds {MAX_BODY_BYTES}",
                status=413,
            )
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}", status=400) from exc
        if not isinstance(payload, dict):
            raise ServiceError("JSON body must be an object", status=400)
        return payload

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_get()
        except ServiceError as exc:
            self._send_error(
                exc.status or 400, str(exc), retry_after=exc.retry_after
            )
        except Exception as exc:  # noqa: BLE001 - never kill the connection thread
            self._send_error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_post()
        except ServiceError as exc:
            self._send_error(
                exc.status or 400, str(exc), retry_after=exc.retry_after
            )
        except ReproError as exc:
            self._send_error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - never kill the connection thread
            self._send_error(500, f"{type(exc).__name__}: {exc}")

    def _route_get(self) -> None:
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, self.service.health())
            return
        if path == "/metrics":
            self._send_metrics(parse_qs(split.query))
            return
        if path == "/cache/stats":
            self._send(200, self.service.cache_stats())
            return
        if path == "/results":
            self._send_results(parse_qs(split.query))
            return
        if path == "/jobs":
            self._send(
                200, {"jobs": [job.as_dict() for job in self.service.jobs()]}
            )
            return
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "trace":
            self._send(200, self.service.trace(parts[1]))
            return
        if len(parts) == 2 and parts[0] == "jobs":
            self._send(200, self.service.job(parts[1]).as_dict())
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._send_result(self.service.job(parts[1]))
            return
        raise ServiceError(f"no such endpoint {self.path!r}", status=404)

    def _send_metrics(self, query: dict[str, list[str]]) -> None:
        fmt = (query.get("format") or ["prometheus"])[-1]
        if fmt == "json":
            self._send(200, self.service.metrics_json())
        elif fmt in ("prometheus", "text"):
            self._send_bytes(
                200,
                self.service.metrics_text().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            raise ServiceError(
                f"unknown metrics format {fmt!r}; use 'prometheus' or 'json'",
                status=400,
            )

    def _send_results(self, query: dict[str, list[str]]) -> None:
        def last(name: str) -> str | None:
            values = query.get(name)
            return values[-1] if values else None

        limit_text = last("limit")
        limit: int | None = None
        if limit_text is not None:
            try:
                limit = int(limit_text)
            except ValueError:
                raise ServiceError(
                    f"limit must be an integer, got {limit_text!r}", status=400
                ) from None
        try:
            document = self.service.results(
                experiment=last("experiment"),
                scenario=last("scenario"),
                kernel=last("kernel"),
                suite=last("suite"),
                run_id=last("run"),
                transform=last("transform"),
                limit=limit,
            )
        except ReproError as exc:
            raise ServiceError(str(exc), status=400) from exc
        self._send(200, document)

    def _send_result(self, job: Job) -> None:
        if job.state == DONE:
            self._send(
                200,
                {
                    "id": job.id,
                    "state": job.state,
                    "elapsed_seconds": job.elapsed_seconds,
                    "result": job.result,
                },
            )
        elif job.state == FAILED:
            self._send(
                500, {"id": job.id, "state": job.state, "error": job.error}
            )
        else:
            self._send(202, {"id": job.id, "state": job.state})

    def _route_post(self) -> None:
        if urlsplit(self.path).path.rstrip("/") != "/jobs":
            raise ServiceError(f"no such endpoint {self.path!r}", status=404)
        payload = self._read_json()
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ServiceError("submission needs a string 'kind'", status=400)
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ServiceError("'params' must be an object", status=400)
        # The header wins over the body field; both are optional, and the
        # scheduler mints a trace when neither is given.
        trace_id = self.headers.get(TRACE_HEADER) or payload.get("trace")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ServiceError("'trace' must be a string", status=400)
        job = self.service.submit(kind, params, trace_id=trace_id)
        self._send(201, job.as_dict())


def serve(
    host: str,
    port: int,
    service: JobService,
) -> ServiceHTTPServer:
    """Bind the API to ``host:port``; the caller drives ``serve_forever``."""
    return ServiceHTTPServer((host, port), service)

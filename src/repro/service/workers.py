"""Workers: bridging the job queue onto the existing task runtime.

A :class:`JobExecutor` owns the shared runtime state -- one
:class:`~repro.runtime.cache.ResultCache` / :class:`~repro.runtime.cache.TaskCache`
pair and one :class:`~repro.runtime.tasks.TaskRunner` -- so every job served
by the process shares the warm caches and the dedup/stat counters, exactly
as a long-lived front end should (the point of the service layer is to stop
paying one-shot CLI costs per request).  Determinism carries over unchanged:
jobs lower onto the same task builders and sweep plans the CLI uses, and the
runtime guarantees serial == parallel bitwise.

A :class:`WorkerPool` runs N daemon threads that claim work from the
:class:`~repro.service.scheduler.JobScheduler` and execute it; the
:class:`JobService` facade wires store, scheduler, executor and pool
together (plus restart recovery) for the HTTP layer and the CLI.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.cache import ResultCache, TaskCache
from repro.runtime.engine import SweepRunner
from repro.runtime.suites import (
    EXPERIMENT_PAYLOAD_SCHEMA,
    build_kernel,
    get_suite,
    run_suite,
)
from repro.runtime.tasks import TaskRunner
from repro.service.jobs import Job, JobStore
from repro.service.scheduler import (
    JobScheduler,
    evaluate_analytic_sweeps,
    experiment_scenario,
    is_analytic_sweep,
)
from repro.store.core import ResultStore
from repro.store.query import query, report_document
from repro.store.readers import ingest_payload

__all__ = ["ExecutorStats", "JobExecutor", "WorkerPool", "JobService"]

SWEEP_SCHEMA = "repro-sweep-result/v1"
EXPERIMENT_SCHEMA = EXPERIMENT_PAYLOAD_SCHEMA

#: Per-kind job execution latency for ``GET /metrics``.  Observed around the
#: executor's work only -- queueing delay is visible separately, as the gap
#: between the ``queued`` and ``running`` timeline events on the job.
_METRIC_JOB_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_job_seconds",
    "Execution wall time of one job, by kind.",
    labelnames=("kind",),
)


@dataclass
class ExecutorStats:
    """Counters accumulated over the lifetime of a :class:`JobExecutor`."""

    jobs_executed: int = 0
    vector_batches: int = 0
    vector_jobs: int = 0
    results_recorded: int = 0
    record_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "jobs_executed": self.jobs_executed,
            "vector_batches": self.vector_batches,
            "vector_jobs": self.vector_jobs,
            "results_recorded": self.results_recorded,
            "record_failures": self.record_failures,
        }


class JobExecutor:
    """Executes claimed jobs on one long-lived slice of the task runtime."""

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        parallel: bool = True,
        max_workers: int | None = None,
    ) -> None:
        root = Path(cache_dir).expanduser() if cache_dir else None
        self.result_cache = ResultCache(root) if root else None
        self.task_cache = TaskCache(root / "tasks") if root else None
        self.result_store = ResultStore(root / "store") if root else None
        self.parallel = parallel
        self.max_workers = max_workers
        self.task_runner = TaskRunner(
            parallel=parallel, max_workers=max_workers, cache=self.task_cache
        )
        self.stats = ExecutorStats()
        self._stats_lock = threading.Lock()

    def sweep_runner(self) -> SweepRunner:
        return SweepRunner(
            parallel=self.parallel,
            max_workers=self.max_workers,
            cache=self.result_cache,
        )

    # -- job execution -------------------------------------------------------

    def execute_batch(self, jobs: list[Job]) -> list[dict[str, Any]]:
        """Resolve one claimed batch to result payloads, in claim order.

        A batch is either one job of any kind, or several analytic sweeps
        (the scheduler's vectorized-batching contract).
        """
        if len(jobs) > 1 or (jobs and is_analytic_sweep(jobs[0])):
            start = time.perf_counter()
            payloads = evaluate_analytic_sweeps([job.params for job in jobs])
            elapsed = time.perf_counter() - start
            with self._stats_lock:
                self.stats.jobs_executed += len(jobs)
                self.stats.vector_batches += 1
                self.stats.vector_jobs += len(jobs)
            # Each job in a vectorized batch observes the whole batch's wall
            # time: that *is* the latency any one of them experienced.
            for job in jobs:
                _METRIC_JOB_SECONDS.labels(kind=job.kind).observe(elapsed)
            return payloads
        return [self.execute(job) for job in jobs]

    def execute(self, job: Job) -> dict[str, Any]:
        with self._stats_lock:
            self.stats.jobs_executed += 1
        start = time.perf_counter()
        # Bind the job's trace for the duration: anything that reads
        # ``current_trace_id()`` below this frame (task labels, error
        # messages) attributes its work to this submission.
        with obs_trace.bind(job.trace_id):
            if job.kind == "suite":
                payload = self._execute_suite(job)
            elif job.kind == "experiment":
                payload = self._execute_experiment(job)
            else:
                payload = self._execute_sweep(job)
        _METRIC_JOB_SECONDS.labels(kind=job.kind).observe(
            time.perf_counter() - start
        )
        return payload

    def _execute_suite(self, job: Job) -> dict[str, Any]:
        suite = get_suite(job.params["suite"])
        result = run_suite(suite, self.sweep_runner(), task_runner=self.task_runner)
        return result.as_dict()

    def _execute_experiment(self, job: Job) -> dict[str, Any]:
        scenario = experiment_scenario(
            job.params["experiment"], job.params["params"]
        )
        # Trace-tagged display names (content-addressed keys unchanged): a
        # task failure inside a worker then names the submission's trace.
        tasks = obs_trace.tag_tasks(scenario.tasks(), job.trace_id)
        results = self.task_runner.run(tasks)
        return scenario.as_payload(results, task_keys=[task.key() for task in tasks])

    def _execute_sweep(self, job: Job) -> dict[str, Any]:
        params = job.params
        kernel = build_kernel(params["kernel"])
        sweep = self.sweep_runner().run_default(
            kernel, params["memory_sizes"], params["scale"]
        )
        try:
            fit = {
                "power_law_exponent": sweep.power_law_fit().exponent,
                "best_model": sweep.best_model(),
                "computation_class": sweep.classification().computation_class.value,
            }
        except ReproError:
            fit = None  # law fitting needs three or more points
        return {
            "schema": SWEEP_SCHEMA,
            "kernel": params["kernel"],
            "scale": params["scale"],
            "memory_sizes": [int(size) for size in sweep.memory_sizes],
            "rows": sweep.rows(),
            "fit": fit,
        }

    def record_payload(self, job: Job, payload: dict[str, Any]) -> None:
        """Ingest one finished job's result into the result store.

        Best-effort by design: recording history must never fail or retry a
        job that already finished.  Suite results record themselves inside
        ``run_suite`` under the same cache root, so this ingest dedups to a
        no-op for them -- the content-addressed run key makes the double
        hook harmless.
        """
        if self.result_store is None:
            return
        suite = job.params.get("suite")
        try:
            receipt = ingest_payload(
                self.result_store,
                payload,
                run_id=payload.get("run_id") or job.id,
                suite=suite if isinstance(suite, str) else None,
                trace_id=job.trace_id,
            )
        except Exception:  # noqa: BLE001 - history is best-effort
            with self._stats_lock:
                self.stats.record_failures += 1
            return
        if receipt.added:
            with self._stats_lock:
                self.stats.results_recorded += 1

    def cache_stats(self) -> dict[str, Any]:
        """Live stats for both caches, including size on disk."""
        payload: dict[str, Any] = {"cache_dir": None, "results": None, "tasks": None}
        if self.result_cache is not None:
            payload["cache_dir"] = str(self.result_cache.root)
            payload["results"] = {
                **self.result_cache.stats.as_dict(),
                "entries": len(self.result_cache),
                "disk_usage_bytes": self.result_cache.disk_usage_bytes(),
            }
        if self.task_cache is not None:
            payload["tasks"] = {
                **self.task_cache.stats.as_dict(),
                "entries": len(self.task_cache),
                "disk_usage_bytes": self.task_cache.disk_usage_bytes(),
            }
        payload["store"] = None
        if self.result_store is not None:
            payload["store"] = {
                **self.result_store.stats.as_dict(),
                "runs": self.result_store.run_count(),
                "records": len(self.result_store),
                "disk_usage_bytes": self.result_store.disk_usage_bytes(),
            }
        payload["task_runner"] = self.task_runner.stats.as_dict()
        return payload


class WorkerPool:
    """N daemon threads draining the scheduler into the executor."""

    def __init__(
        self, scheduler: JobScheduler, executor: JobExecutor, *, count: int = 2
    ) -> None:
        if count < 1:
            raise ReproError(f"worker count must be >= 1, got {count!r}")
        self.scheduler = scheduler
        self.executor = executor
        self.count = count
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def start(self) -> None:
        if self._threads:
            return
        self.scheduler.reopen()  # a stop/start cycle must not leave claim() hot
        for index in range(self.count):
            thread = threading.Thread(
                target=self._loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self.scheduler.close()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        self._stop.clear()

    def _loop(self) -> None:
        while not self._stop.is_set():
            batch = self.scheduler.claim(timeout=0.1)
            if not batch:
                continue
            try:
                payloads = self.executor.execute_batch(batch)
            except Exception as exc:  # noqa: BLE001 - jobs must never kill a worker
                if len(batch) > 1:
                    # One bad job must not poison the unrelated analytic
                    # sweeps that happened to ride the same batch: retry each
                    # alone so only the actual offenders fail.
                    for job in batch:
                        self._run_alone(job)
                else:
                    self.scheduler.fail(batch[0], f"{type(exc).__name__}: {exc}")
                continue
            for job, payload in zip(batch, payloads):
                self.executor.record_payload(job, payload)
                self.scheduler.finish(job, payload)

    def _run_alone(self, job: Job) -> None:
        try:
            (payload,) = self.executor.execute_batch([job])
        except Exception as exc:  # noqa: BLE001 - jobs must never kill a worker
            self.scheduler.fail(job, f"{type(exc).__name__}: {exc}")
        else:
            self.executor.record_payload(job, payload)
            self.scheduler.finish(job, payload)


class JobService:
    """Store + scheduler + executor + worker pool, wired together.

    The one long-lived object behind both the HTTP API and in-process tests.
    Construction recovers persisted state (``state_path``); :meth:`start`
    spins the workers up -- kept separate so tests and benchmarks can queue
    submissions deterministically before execution begins.
    """

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        state_path: str | Path | None = None,
        parallel: bool = True,
        max_workers: int | None = None,
        workers: int = 2,
    ) -> None:
        self.store = JobStore(state_path)
        self.scheduler = JobScheduler(self.store)
        self.executor = JobExecutor(
            cache_dir=cache_dir, parallel=parallel, max_workers=max_workers
        )
        self.pool = WorkerPool(self.scheduler, self.executor, count=workers)
        self.started_at = time.time()
        for job in self.store.interrupted():
            try:
                self.scheduler.requeue(job)
            except ReproError as exc:
                # A stale journal entry (e.g. a suite renamed between
                # versions) must not stop the service from booting.
                self.store.mark_failed(job, f"unrecoverable after restart: {exc}")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "JobService":
        self.pool.start()
        return self

    def stop(self) -> None:
        self.pool.stop()

    # -- the API surface -----------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        trace_id: str | None = None,
    ) -> Job:
        return self.scheduler.submit(kind, params, trace_id=trace_id)

    def job(self, job_id: str) -> Job:
        return self.store.get(job_id)

    def jobs(self) -> list[Job]:
        return self.store.jobs()

    def health(self) -> dict[str, Any]:
        return {
            "ok": True,
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.pool.count,
            "workers_running": self.pool.running,
            "queue_depth": self.scheduler.queue_depth,
            "jobs": self.store.state_counts(),
            "scheduler": self.scheduler.stats.as_dict(),
            "executor": self.executor.stats.as_dict(),
        }

    def cache_stats(self) -> dict[str, Any]:
        return self.executor.cache_stats()

    def results(
        self,
        *,
        experiment: str | None = None,
        scenario: str | None = None,
        kernel: str | None = None,
        suite: str | None = None,
        run_id: str | None = None,
        transform: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """The report document over recorded results (``GET /results``).

        Filters narrow the raw records *before* an optional named transform
        runs (transforms like ``speedup-trend`` need the full cross-run
        history of whatever matched); ``limit`` keeps the last N rows of
        whatever comes out.  An uncached service has no store and reports
        zero records.
        """
        if limit is not None and limit < 0:
            raise ReproError(f"limit must be non-negative, got {limit!r}")
        store = self.executor.result_store
        records: list[dict[str, Any]] = []
        if store is not None:
            records = query(
                store,
                experiment=experiment,
                scenario=scenario,
                kernel=kernel,
                suite=suite,
                run_id=run_id,
            )
        if transform:
            from repro.analysis.transforms import apply_transform

            records = apply_transform(transform, records)
        if limit is not None:
            records = records[len(records) - min(limit, len(records)) :]
        return report_document(
            records,
            transform=transform,
            filters={
                "experiment": experiment,
                "scenario": scenario,
                "kernel": kernel,
                "suite": suite,
                "run_id": run_id,
                "limit": limit,
            },
        )

    def metrics_text(self) -> str:
        """The process metrics in Prometheus text format (``GET /metrics``)."""
        return obs_metrics.REGISTRY.render_prometheus()

    def metrics_json(self) -> dict[str, Any]:
        """The process metrics as JSON (``GET /metrics?format=json``)."""
        return obs_metrics.REGISTRY.render_json()

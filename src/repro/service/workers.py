"""Workers: bridging the job queue onto the existing task runtime.

A :class:`JobExecutor` owns the shared runtime state -- one
:class:`~repro.runtime.cache.ResultCache` / :class:`~repro.runtime.cache.TaskCache`
pair and one :class:`~repro.runtime.tasks.TaskRunner` -- so every job served
by the process shares the warm caches and the dedup/stat counters, exactly
as a long-lived front end should (the point of the service layer is to stop
paying one-shot CLI costs per request).  Determinism carries over unchanged:
jobs lower onto the same task builders and sweep plans the CLI uses, and the
runtime guarantees serial == parallel bitwise.

A :class:`WorkerPool` runs N daemon threads that claim work from the
:class:`~repro.service.scheduler.JobScheduler` and execute it; the
:class:`JobService` facade wires store, scheduler, executor and pool
together (plus restart recovery) for the HTTP layer and the CLI.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError, ServiceError
from repro.faults.injector import InjectedWorkerCrash, maybe_inject
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.service.retry import is_transient, transient_reason
from repro.runtime.cache import ResultCache, TaskCache
from repro.runtime.engine import SweepRunner
from repro.runtime.suites import (
    EXPERIMENT_PAYLOAD_SCHEMA,
    build_kernel,
    get_suite,
    run_suite,
)
from repro.runtime.tasks import TaskRunner
from repro.service.jobs import Job, JobStore
from repro.service.scheduler import (
    JobScheduler,
    evaluate_analytic_sweeps,
    experiment_scenario,
    is_analytic_sweep,
)
from repro.store.core import ResultStore
from repro.store.query import query, report_document
from repro.store.readers import ingest_payload

__all__ = ["ExecutorStats", "JobExecutor", "WorkerPool", "JobService"]

SWEEP_SCHEMA = "repro-sweep-result/v1"
EXPERIMENT_SCHEMA = EXPERIMENT_PAYLOAD_SCHEMA

#: Per-kind job execution latency for ``GET /metrics``.  Observed around the
#: executor's work only -- queueing delay is visible separately, as the gap
#: between the ``queued`` and ``running`` timeline events on the job.
_METRIC_JOB_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_job_seconds",
    "Execution wall time of one job, by kind.",
    labelnames=("kind",),
)
_METRIC_WORKER_RESTARTS = obs_metrics.REGISTRY.counter(
    "repro_worker_restarts_total",
    "Dead worker threads detected and respawned by the supervisor.",
)
_METRIC_WORKER_STOP_HUNG = obs_metrics.REGISTRY.counter(
    "repro_worker_stop_hung_total",
    "Worker threads still alive after a pool stop timeout.",
)

_LOG = logging.getLogger("repro.service")


@dataclass
class ExecutorStats:
    """Counters accumulated over the lifetime of a :class:`JobExecutor`."""

    jobs_executed: int = 0
    vector_batches: int = 0
    vector_jobs: int = 0
    results_recorded: int = 0
    record_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "jobs_executed": self.jobs_executed,
            "vector_batches": self.vector_batches,
            "vector_jobs": self.vector_jobs,
            "results_recorded": self.results_recorded,
            "record_failures": self.record_failures,
        }


class JobExecutor:
    """Executes claimed jobs on one long-lived slice of the task runtime."""

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        parallel: bool = True,
        max_workers: int | None = None,
    ) -> None:
        root = Path(cache_dir).expanduser() if cache_dir else None
        self.result_cache = ResultCache(root) if root else None
        self.task_cache = TaskCache(root / "tasks") if root else None
        self.result_store = ResultStore(root / "store") if root else None
        self.parallel = parallel
        self.max_workers = max_workers
        self.task_runner = TaskRunner(
            parallel=parallel, max_workers=max_workers, cache=self.task_cache
        )
        self.stats = ExecutorStats()
        self._stats_lock = threading.Lock()

    def sweep_runner(self) -> SweepRunner:
        return SweepRunner(
            parallel=self.parallel,
            max_workers=self.max_workers,
            cache=self.result_cache,
        )

    # -- job execution -------------------------------------------------------

    def execute_batch(self, jobs: list[Job]) -> list[dict[str, Any]]:
        """Resolve one claimed batch to result payloads, in claim order.

        A batch is either one job of any kind, or several analytic sweeps
        (the scheduler's vectorized-batching contract).
        """
        if len(jobs) > 1 or (jobs and is_analytic_sweep(jobs[0])):
            start = time.perf_counter()
            payloads = evaluate_analytic_sweeps([job.params for job in jobs])
            elapsed = time.perf_counter() - start
            with self._stats_lock:
                self.stats.jobs_executed += len(jobs)
                self.stats.vector_batches += 1
                self.stats.vector_jobs += len(jobs)
            # Each job in a vectorized batch observes the whole batch's wall
            # time: that *is* the latency any one of them experienced.
            for job in jobs:
                _METRIC_JOB_SECONDS.labels(kind=job.kind).observe(elapsed)
            return payloads
        return [self.execute(job) for job in jobs]

    def execute(self, job: Job) -> dict[str, Any]:
        with self._stats_lock:
            self.stats.jobs_executed += 1
        start = time.perf_counter()
        # Bind the job's trace for the duration: anything that reads
        # ``current_trace_id()`` below this frame (task labels, error
        # messages) attributes its work to this submission.  The execution
        # span parents under the job's root (opened at submission) so the
        # trace tree separates queue wait from run time; recovered jobs
        # without a live root simply start a fresh tree here.
        with obs_trace.bind(job.trace_id):
            with obs_spans.activate(getattr(job, "root_span", None)):
                with obs_spans.span(
                    "job.execute",
                    kind="worker",
                    attributes={
                        "job_id": job.id,
                        "job_kind": job.kind,
                        "attempt": job.attempts,
                    },
                ):
                    if job.kind == "suite":
                        payload = self._execute_suite(job)
                    elif job.kind == "experiment":
                        payload = self._execute_experiment(job)
                    else:
                        payload = self._execute_sweep(job)
        _METRIC_JOB_SECONDS.labels(kind=job.kind).observe(
            time.perf_counter() - start
        )
        return payload

    def _execute_suite(self, job: Job) -> dict[str, Any]:
        suite = get_suite(job.params["suite"])
        result = run_suite(suite, self.sweep_runner(), task_runner=self.task_runner)
        return result.as_dict()

    def _execute_experiment(self, job: Job) -> dict[str, Any]:
        scenario = experiment_scenario(
            job.params["experiment"], job.params["params"]
        )
        # Trace-tagged display names (content-addressed keys unchanged): a
        # task failure inside a worker then names the submission's trace.
        tasks = obs_trace.tag_tasks(scenario.tasks(), job.trace_id)
        results = self.task_runner.run(tasks)
        return scenario.as_payload(results, task_keys=[task.key() for task in tasks])

    def _execute_sweep(self, job: Job) -> dict[str, Any]:
        params = job.params
        kernel = build_kernel(params["kernel"])
        sweep = self.sweep_runner().run_default(
            kernel, params["memory_sizes"], params["scale"]
        )
        try:
            fit = {
                "power_law_exponent": sweep.power_law_fit().exponent,
                "best_model": sweep.best_model(),
                "computation_class": sweep.classification().computation_class.value,
            }
        except ReproError:
            fit = None  # law fitting needs three or more points
        return {
            "schema": SWEEP_SCHEMA,
            "kernel": params["kernel"],
            "scale": params["scale"],
            "memory_sizes": [int(size) for size in sweep.memory_sizes],
            "rows": sweep.rows(),
            "fit": fit,
        }

    def record_payload(self, job: Job, payload: dict[str, Any]) -> None:
        """Ingest one finished job's result into the result store.

        Best-effort by design: recording history must never fail or retry a
        job that already finished.  Suite results record themselves inside
        ``run_suite`` under the same cache root, so this ingest dedups to a
        no-op for them -- the content-addressed run key makes the double
        hook harmless.
        """
        if self.result_store is None:
            return
        suite = job.params.get("suite")
        try:
            receipt = ingest_payload(
                self.result_store,
                payload,
                run_id=payload.get("run_id") or job.id,
                suite=suite if isinstance(suite, str) else None,
                trace_id=job.trace_id,
            )
        except Exception:  # noqa: BLE001 - history is best-effort
            with self._stats_lock:
                self.stats.record_failures += 1
            return
        if receipt.added:
            with self._stats_lock:
                self.stats.results_recorded += 1

    def record_trace(self, job: Job) -> None:
        """Ingest one terminal job's span tree into the result store.

        Runs *after* the scheduler closed the job's root span, so the
        snapshot includes the full submit-to-terminal tree.  Best-effort
        like :meth:`record_payload`: spans are diagnostics, never worth
        failing a finished job over.  The ``repro-spans/v1`` records make
        per-phase hotspots queryable across runs (``span-hotspots``).
        """
        if self.result_store is None or job.trace_id is None:
            return
        sink = obs_spans.collector()
        if sink is None:
            return
        spans = sink.spans(job.trace_id)
        if not spans:
            return
        try:
            ingest_payload(
                self.result_store,
                obs_spans.spans_payload(job.trace_id, spans),
                run_id=job.trace_id,
                trace_id=job.trace_id,
            )
        except Exception:  # noqa: BLE001 - history is best-effort
            with self._stats_lock:
                self.stats.record_failures += 1

    def cache_stats(self) -> dict[str, Any]:
        """Live stats for both caches, including size on disk."""
        payload: dict[str, Any] = {"cache_dir": None, "results": None, "tasks": None}
        if self.result_cache is not None:
            payload["cache_dir"] = str(self.result_cache.root)
            payload["results"] = {
                **self.result_cache.stats.as_dict(),
                "entries": len(self.result_cache),
                "disk_usage_bytes": self.result_cache.disk_usage_bytes(),
            }
        if self.task_cache is not None:
            payload["tasks"] = {
                **self.task_cache.stats.as_dict(),
                "entries": len(self.task_cache),
                "disk_usage_bytes": self.task_cache.disk_usage_bytes(),
            }
        payload["store"] = None
        if self.result_store is not None:
            payload["store"] = {
                **self.result_store.stats.as_dict(),
                "runs": self.result_store.run_count(),
                "records": len(self.result_store),
                "disk_usage_bytes": self.result_store.disk_usage_bytes(),
            }
        payload["task_runner"] = self.task_runner.stats.as_dict()
        return payload


class WorkerPool:
    """N supervised daemon threads draining the scheduler into the executor.

    Every claimed batch is registered in an in-flight map before execution
    begins.  A *supervisor* thread watches the workers: when one dies --
    the chaos suite's ``task-crash`` fault, or any real bug that escapes
    the per-job guard -- the supervisor requeues its in-flight jobs through
    the scheduler's retry path (attempt count incremented, backoff applied)
    and respawns a replacement worker, counted by
    ``repro_worker_restarts_total``.  A crashed worker therefore costs one
    retry delay, never a stranded job.

    :meth:`stop` reports honesty instead of silence: a worker still alive
    after its join timeout is logged, counted by
    ``repro_worker_stop_hung_total``, recorded in :attr:`hung_workers`, and
    makes ``stop`` return ``False`` so callers know the shutdown was
    unclean (the stop flag stays set, so a hung worker exits as soon as it
    unblocks).
    """

    def __init__(
        self,
        scheduler: JobScheduler,
        executor: JobExecutor,
        *,
        count: int = 2,
        supervise_interval: float = 0.2,
    ) -> None:
        if count < 1:
            raise ReproError(f"worker count must be >= 1, got {count!r}")
        self.scheduler = scheduler
        self.executor = executor
        self.count = count
        self.supervise_interval = supervise_interval
        self._lock = threading.Lock()
        self._workers: dict[str, threading.Thread] = {}
        self._inflight: dict[str, list[str]] = {}  # thread name -> job ids
        self._supervisor: threading.Thread | None = None
        self._next_index = 0
        self._stop = threading.Event()
        self.restarts = 0
        self.hung_workers: list[str] = []

    @property
    def running(self) -> bool:
        with self._lock:
            return any(thread.is_alive() for thread in self._workers.values())

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "alive": sum(
                    1 for t in self._workers.values() if t.is_alive()
                ),
                "restarts": self.restarts,
                "hung_workers": list(self.hung_workers),
            }

    def start(self) -> None:
        with self._lock:
            if self._workers:
                return
            self._stop.clear()
            self.scheduler.reopen()  # a stop/start cycle must not leave claim() hot
            self.hung_workers = []
            for _ in range(self.count):
                self._spawn_locked()
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-supervisor", daemon=True
            )
            self._supervisor.start()

    def _spawn_locked(self) -> None:
        name = f"repro-worker-{self._next_index}"
        self._next_index += 1
        thread = threading.Thread(
            target=self._run_worker, name=name, daemon=True
        )
        self._workers[name] = thread
        thread.start()

    def stop(self, timeout: float = 5.0) -> bool:
        """Stop workers and supervisor; ``False`` when any worker hung.

        ``thread.join(timeout)`` returning says nothing about success, so
        each worker is re-checked with ``is_alive`` afterwards: survivors
        are logged, counted and reported to the caller instead of being
        silently abandoned.  The stop flag is left set on an unclean stop,
        so a hung worker that eventually unblocks exits instead of claiming
        new work.
        """
        self._stop.set()
        self.scheduler.close()
        supervisor = self._supervisor
        if supervisor is not None:
            supervisor.join(max(timeout, self.supervise_interval * 5))
            self._supervisor = None
        with self._lock:
            workers = dict(self._workers)
        deadline = time.monotonic() + timeout
        hung = []
        for name, thread in workers.items():
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                hung.append(name)
        if hung:
            _METRIC_WORKER_STOP_HUNG.inc(len(hung))
            _LOG.warning(
                "worker pool stop was unclean: %d worker(s) still alive "
                "after %.1fs: %s", len(hung), timeout, ", ".join(hung),
            )
        with self._lock:
            self.hung_workers = hung
            self._workers = {}
            self._inflight = {
                name: jobs
                for name, jobs in self._inflight.items()
                if name in hung
            }
        return not hung

    # -- the worker threads --------------------------------------------------

    def _run_worker(self) -> None:
        try:
            self._loop()
        except InjectedWorkerCrash:
            # A chaos-injected death: return quietly (no threading
            # excepthook noise).  The in-flight registration survives, so
            # the supervisor requeues this worker's jobs and respawns it.
            return

    def _loop(self) -> None:
        name = threading.current_thread().name
        while not self._stop.is_set():
            batch = self.scheduler.claim(timeout=0.1)
            if not batch:
                continue
            with self._lock:
                self._inflight[name] = [job.id for job in batch]
            try:
                # The task-crash injection point sits between claim and
                # execute -- the job is marked running and registered
                # in-flight, exactly the window a real crash strands work.
                # slow-task stalls here too, simulating a wedged job.
                maybe_inject("task-crash", site=f"{name}:{batch[0].kind}")
                maybe_inject("slow-task", site=f"{name}:{batch[0].kind}")
                payloads = self.executor.execute_batch(batch)
            except Exception as exc:  # noqa: BLE001 - jobs must never kill a worker
                with self._lock:
                    self._inflight.pop(name, None)
                if len(batch) > 1:
                    # One bad job must not poison the unrelated analytic
                    # sweeps that happened to ride the same batch: retry each
                    # alone so only the actual offenders fail.
                    for job in batch:
                        self._run_alone(job)
                else:
                    self._resolve_failure(batch[0], exc)
                continue
            with self._lock:
                self._inflight.pop(name, None)
            for job, payload in zip(batch, payloads):
                self.executor.record_payload(job, payload)
                self.scheduler.finish(job, payload)
                self.executor.record_trace(job)

    def _run_alone(self, job: Job) -> None:
        try:
            (payload,) = self.executor.execute_batch([job])
        except Exception as exc:  # noqa: BLE001 - jobs must never kill a worker
            self._resolve_failure(job, exc)
        else:
            self.executor.record_payload(job, payload)
            self.scheduler.finish(job, payload)
            self.executor.record_trace(job)

    def _resolve_failure(self, job: Job, exc: Exception) -> None:
        """Retry a transient failure within policy; fail everything else."""
        message = f"{type(exc).__name__}: {exc}"
        if is_transient(exc) and self.scheduler.retry(
            job, reason=transient_reason(exc)
        ):
            return
        self.scheduler.fail(job, message)
        self.executor.record_trace(job)

    # -- supervision ---------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.wait(self.supervise_interval):
            self.reap_dead_workers()

    def reap_dead_workers(self) -> int:
        """Requeue dead workers' jobs and respawn replacements.

        Normally driven by the supervisor thread; public so tests (and a
        paranoid caller) can force a supervision pass synchronously.
        Returns the number of dead workers handled.
        """
        with self._lock:
            dead = [
                name
                for name, thread in self._workers.items()
                if not thread.is_alive()
            ]
            orphans: list[str] = []
            for name in dead:
                orphans.extend(self._inflight.pop(name, []))
                del self._workers[name]
            respawned = 0
            if not self._stop.is_set():
                for _ in dead:
                    self._spawn_locked()
                    respawned += 1
                self.restarts += respawned
        if respawned:
            _METRIC_WORKER_RESTARTS.inc(respawned)
            _LOG.warning(
                "supervisor: %d dead worker(s) respawned, %d job(s) requeued",
                respawned, len(orphans),
            )
        for job_id in orphans:
            job = self.scheduler.store.get(job_id)
            if job.terminal:
                continue
            if not self.scheduler.retry(job, reason="worker-crash"):
                self.scheduler.fail(
                    job,
                    "worker crashed mid-job and the retry policy is "
                    f"exhausted after {job.attempts} attempt(s)",
                )
        return len(dead)


class JobService:
    """Store + scheduler + executor + worker pool, wired together.

    The one long-lived object behind both the HTTP API and in-process tests.
    Construction recovers persisted state (``state_path``); :meth:`start`
    spins the workers up -- kept separate so tests and benchmarks can queue
    submissions deterministically before execution begins.
    """

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        state_path: str | Path | None = None,
        parallel: bool = True,
        max_workers: int | None = None,
        workers: int = 2,
        max_queue_depth: int | None = None,
        spans: bool = True,
    ) -> None:
        self.spans = spans
        self.store = JobStore(state_path)
        self.scheduler = JobScheduler(
            self.store, max_queue_depth=max_queue_depth, workers_hint=workers
        )
        self.executor = JobExecutor(
            cache_dir=cache_dir, parallel=parallel, max_workers=max_workers
        )
        self.pool = WorkerPool(self.scheduler, self.executor, count=workers)
        self.started_at = time.time()
        self._draining = threading.Event()
        for job in self.store.interrupted():
            try:
                self.scheduler.requeue(job)
            except ReproError as exc:
                # A stale journal entry (e.g. a suite renamed between
                # versions) must not stop the service from booting.
                self.store.mark_failed(job, f"unrecoverable after restart: {exc}")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "JobService":
        # Build identity is always published on /metrics; span collection is
        # on by default (cheap: bounded buffer, aggregated phases) but can be
        # opted out (``repro serve --no-spans``), dropping every hook back to
        # its branch-predictable no-op.
        obs_metrics.record_build_info()
        if self.spans and not obs_spans.enabled():
            obs_spans.enable()
        self._draining.clear()
        self.pool.start()
        return self

    def stop(self, timeout: float = 5.0) -> bool:
        """Stop the worker pool; ``False`` when the stop was unclean."""
        return self.pool.stop(timeout)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: refuse new jobs, finish in-flight, stop.

        Submissions after this point get 503 + ``Retry-After``.  Queued and
        running work is given ``timeout`` seconds to reach a terminal state
        (every transition is journaled as usual, so anything unfinished is
        requeued by the next boot's restart recovery).  Returns ``True``
        when the queue fully drained and the pool stopped cleanly.
        """
        self._draining.set()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            counts = self.store.state_counts()
            if counts.get("queued", 0) == 0 and counts.get("running", 0) == 0:
                break
            time.sleep(0.05)
        counts = self.store.state_counts()
        drained = counts.get("queued", 0) == 0 and counts.get("running", 0) == 0
        clean = self.pool.stop(max(1.0, deadline - time.monotonic()))
        if not drained:
            _LOG.warning(
                "drain timed out with %d queued and %d running job(s); "
                "they stay journaled for restart recovery",
                counts.get("queued", 0), counts.get("running", 0),
            )
        return drained and clean

    # -- the API surface -----------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        trace_id: str | None = None,
    ) -> Job:
        if self._draining.is_set():
            raise ServiceError(
                "service is draining and not accepting new jobs",
                status=503,
                retry_after=max(5.0, self.scheduler.retry_after_estimate()),
            )
        return self.scheduler.submit(kind, params, trace_id=trace_id)

    def job(self, job_id: str) -> Job:
        return self.store.get(job_id)

    def trace(self, trace_id: str) -> dict[str, Any]:
        """The rooted span tree for one trace (``GET /trace/{id}``).

        404s when no spans are buffered for the trace -- collection may be
        disabled, the trace may be unknown, or its spans may have been
        evicted from the ring (``repro_spans_dropped_total`` says which).
        """
        sink = obs_spans.collector()
        spans = sink.spans(trace_id) if sink is not None else []
        if not spans:
            detail = (
                "span collection is disabled"
                if sink is None
                else "unknown trace, or its spans were evicted from the buffer"
            )
            raise ServiceError(
                f"no spans recorded for trace {trace_id!r} ({detail})",
                status=404,
            )
        return obs_spans.trace_document(trace_id, spans)

    def jobs(self) -> list[Job]:
        return self.store.jobs()

    def health(self) -> dict[str, Any]:
        return {
            "ok": True,
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.pool.count,
            "workers_running": self.pool.running,
            "draining": self.draining,
            "queue_depth": self.scheduler.queue_depth,
            "max_queue_depth": self.scheduler.max_queue_depth,
            "jobs": self.store.state_counts(),
            "scheduler": self.scheduler.stats.as_dict(),
            "executor": self.executor.stats.as_dict(),
            "pool": self.pool.as_dict(),
        }

    def cache_stats(self) -> dict[str, Any]:
        return self.executor.cache_stats()

    def results(
        self,
        *,
        experiment: str | None = None,
        scenario: str | None = None,
        kernel: str | None = None,
        suite: str | None = None,
        run_id: str | None = None,
        transform: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """The report document over recorded results (``GET /results``).

        Filters narrow the raw records *before* an optional named transform
        runs (transforms like ``speedup-trend`` need the full cross-run
        history of whatever matched); ``limit`` keeps the last N rows of
        whatever comes out.  An uncached service has no store and reports
        zero records.
        """
        if limit is not None and limit < 0:
            raise ReproError(f"limit must be non-negative, got {limit!r}")
        store = self.executor.result_store
        records: list[dict[str, Any]] = []
        if store is not None:
            records = query(
                store,
                experiment=experiment,
                scenario=scenario,
                kernel=kernel,
                suite=suite,
                run_id=run_id,
            )
        if transform:
            from repro.analysis.transforms import apply_transform

            records = apply_transform(transform, records)
        if limit is not None:
            records = records[len(records) - min(limit, len(records)) :]
        return report_document(
            records,
            transform=transform,
            filters={
                "experiment": experiment,
                "scenario": scenario,
                "kernel": kernel,
                "suite": suite,
                "run_id": run_id,
                "limit": limit,
            },
        )

    def metrics_text(self) -> str:
        """The process metrics in Prometheus text format (``GET /metrics``)."""
        return obs_metrics.REGISTRY.render_prometheus()

    def metrics_json(self) -> dict[str, Any]:
        """The process metrics as JSON (``GET /metrics?format=json``)."""
        return obs_metrics.REGISTRY.render_json()

"""A blocking Python client for the job service (stdlib ``http.client``).

The client the tests, benchmarks and ``repro submit`` use: submit a job,
poll its status, fetch its result.  Errors surface as
:class:`~repro.exceptions.ServiceError` carrying the HTTP status, so callers
can distinguish a rejected submission (400) from a lost job (404) or a
failed one (500).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any
from urllib.parse import urlencode

from repro.exceptions import ServiceError
from repro.obs.trace import TRACE_HEADER
from repro.service.jobs import DONE, FAILED

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking JSON-over-HTTP client for one service endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8035, *, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = dict(extra_headers or {})
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except OSError as exc:
            raise ServiceError(
                f"cannot reach repro service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            document = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"non-JSON response from {method} {path}: {raw[:200]!r}",
                status=response.status,
            ) from exc
        return response.status, document

    def _get(self, path: str, *, expect: tuple[int, ...]) -> dict[str, Any]:
        status, document = self._request("GET", path)
        if status not in expect:
            raise ServiceError(
                document.get("error", f"GET {path} returned {status}"),
                status=status,
            )
        return document

    # -- the API surface -----------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._get("/healthz", expect=(200,))

    def cache_stats(self) -> dict[str, Any]:
        return self._get("/cache/stats", expect=(200,))

    def metrics(self) -> dict[str, Any]:
        """The service's metrics as the ``repro-metrics/v1`` JSON document."""
        return self._get("/metrics?format=json", expect=(200,))

    def jobs(self) -> list[dict[str, Any]]:
        return self._get("/jobs", expect=(200,))["jobs"]

    def results(
        self,
        *,
        experiment: str | None = None,
        scenario: str | None = None,
        kernel: str | None = None,
        suite: str | None = None,
        run_id: str | None = None,
        transform: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """The ``repro-report/v1`` document from ``GET /results``."""
        params = {
            "experiment": experiment,
            "scenario": scenario,
            "kernel": kernel,
            "suite": suite,
            "run": run_id,
            "transform": transform,
            "limit": limit,
        }
        given = {name: value for name, value in params.items() if value is not None}
        path = "/results"
        if given:
            path += "?" + urlencode(given)
        return self._get(path, expect=(200,))

    def submit(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """Submit a job; returns its status document (state ``queued``).

        ``trace_id`` travels as the ``X-Repro-Trace`` header; the service
        mints one when it is omitted (the returned document's ``trace_id``
        says which).
        """
        headers = {TRACE_HEADER: trace_id} if trace_id else None
        status, document = self._request(
            "POST", "/jobs", {"kind": kind, "params": params},
            extra_headers=headers,
        )
        if status != 201:
            raise ServiceError(
                document.get("error", f"submission returned {status}"),
                status=status,
            )
        return document

    def job(self, job_id: str) -> dict[str, Any]:
        return self._get(f"/jobs/{job_id}", expect=(200,))

    def result(self, job_id: str) -> dict[str, Any]:
        """The result document of a finished job; raises unless ``done``."""
        status, document = self._request("GET", f"/jobs/{job_id}/result")
        if status == 200:
            return document
        if status == 202:
            raise ServiceError(
                f"job {job_id} is still {document.get('state', 'open')}",
                status=status,
            )
        raise ServiceError(
            document.get("error", f"job {job_id} returned {status}"),
            status=status,
        )

    def wait(
        self, job_id: str, *, timeout: float = 120.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Block until the job reaches a terminal state; return its result.

        A failed job raises :class:`ServiceError` with the job's error and
        HTTP status 500; a timeout raises with the last observed state.
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["state"] in (DONE, FAILED):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job "
                    f"{job_id} (last state {document['state']!r})"
                )
            time.sleep(poll)

    def submit_and_wait(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        timeout: float = 120.0,
        poll: float = 0.05,
    ) -> dict[str, Any]:
        """Submit one job and block for its result."""
        job = self.submit(kind, params)
        return self.wait(job["id"], timeout=timeout, poll=poll)

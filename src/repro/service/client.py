"""A blocking Python client for the job service (stdlib ``http.client``).

The client the tests, benchmarks and ``repro submit`` use: submit a job,
poll its status, fetch its result.  Errors surface as
:class:`~repro.exceptions.ServiceError` carrying the HTTP status, so callers
can distinguish a rejected submission (400) from a lost job (404) or a
failed one (500).

Resilience built in:

* transient connection failures (refused, reset) are retried with capped
  exponential backoff before surfacing -- safe even for submissions,
  because the scheduler's content-addressed dedup attaches an accidental
  duplicate to the original instead of running it twice;
* backpressure (429 queue-saturated, 503 draining) is honored rather than
  fought: :meth:`submit` can sleep out the server's ``Retry-After`` hint
  and resubmit until a ``busy_timeout`` budget runs out;
* :meth:`wait` polls adaptively -- fast at first for sub-100ms analytic
  jobs, decaying toward one request per second for minutes-long suites --
  instead of hammering the service at a fixed 50ms forever.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any
from urllib.parse import urlencode

from repro.exceptions import ServiceError
from repro.obs.trace import TRACE_HEADER
from repro.service.jobs import DONE, FAILED

__all__ = ["ServiceClient"]

#: Poll interval growth for :meth:`ServiceClient.wait` -- each idle poll
#: waits this factor longer than the last, up to the one-second ceiling.
_POLL_GROWTH = 1.5
_POLL_CEILING = 1.0

#: HTTP statuses that mean "come back later", not "you did something wrong".
_BUSY_STATUSES = (429, 503)


class ServiceClient:
    """Blocking JSON-over-HTTP client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8035,
        *,
        timeout: float = 30.0,
        connect_retries: int = 2,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retries = max(0, connect_retries)

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        delay = 0.1
        for attempt in range(self.connect_retries + 1):
            try:
                return self._request_once(method, path, payload, extra_headers)
            except ConnectionError as exc:
                # Refused/reset connections are the transient shape (a
                # service mid-restart, a listen backlog burp); anything
                # else -- timeouts included -- surfaces immediately.
                if attempt >= self.connect_retries:
                    raise ServiceError(
                        f"cannot reach repro service at {self.host}:"
                        f"{self.port} after {attempt + 1} attempts: {exc}"
                    ) from exc
                time.sleep(delay)
                delay = min(1.0, delay * 2)
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None,
        extra_headers: dict[str, str] | None,
    ) -> tuple[int, dict[str, Any]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = dict(extra_headers or {})
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except ConnectionError:
            raise  # retried by _request
        except OSError as exc:
            raise ServiceError(
                f"cannot reach repro service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            document = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"non-JSON response from {method} {path}: {raw[:200]!r}",
                status=response.status,
            ) from exc
        return response.status, document

    def _get(self, path: str, *, expect: tuple[int, ...]) -> dict[str, Any]:
        status, document = self._request("GET", path)
        if status not in expect:
            raise ServiceError(
                document.get("error", f"GET {path} returned {status}"),
                status=status,
            )
        return document

    # -- the API surface -----------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._get("/healthz", expect=(200,))

    def cache_stats(self) -> dict[str, Any]:
        return self._get("/cache/stats", expect=(200,))

    def metrics(self) -> dict[str, Any]:
        """The service's metrics as the ``repro-metrics/v1`` JSON document."""
        return self._get("/metrics?format=json", expect=(200,))

    def jobs(self) -> list[dict[str, Any]]:
        return self._get("/jobs", expect=(200,))["jobs"]

    def results(
        self,
        *,
        experiment: str | None = None,
        scenario: str | None = None,
        kernel: str | None = None,
        suite: str | None = None,
        run_id: str | None = None,
        transform: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """The ``repro-report/v1`` document from ``GET /results``."""
        params = {
            "experiment": experiment,
            "scenario": scenario,
            "kernel": kernel,
            "suite": suite,
            "run": run_id,
            "transform": transform,
            "limit": limit,
        }
        given = {name: value for name, value in params.items() if value is not None}
        path = "/results"
        if given:
            path += "?" + urlencode(given)
        return self._get(path, expect=(200,))

    def submit(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        trace_id: str | None = None,
        busy_timeout: float = 0.0,
    ) -> dict[str, Any]:
        """Submit a job; returns its status document (state ``queued``).

        ``trace_id`` travels as the ``X-Repro-Trace`` header; the service
        mints one when it is omitted (the returned document's ``trace_id``
        says which).

        ``busy_timeout`` is the backpressure budget: on a 429 (queue
        saturated) or 503 (draining) response the client sleeps out the
        server's ``Retry-After`` hint and resubmits, until the budget is
        spent -- then the last backpressure error surfaces with its status
        and ``retry_after`` attached.  The default of ``0`` surfaces
        backpressure immediately, which is what tests and load-aware
        callers want.
        """
        headers = {TRACE_HEADER: trace_id} if trace_id else None
        deadline = time.monotonic() + busy_timeout
        while True:
            status, document = self._request(
                "POST", "/jobs", {"kind": kind, "params": params},
                extra_headers=headers,
            )
            if status == 201:
                return document
            retry_after = document.get("retry_after")
            if status in _BUSY_STATUSES:
                pause = float(retry_after) if retry_after else 1.0
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    time.sleep(min(pause, max(0.05, remaining)))
                    continue
            raise ServiceError(
                document.get("error", f"submission returned {status}"),
                status=status,
                retry_after=(
                    float(retry_after) if retry_after is not None else None
                ),
            )

    def job(self, job_id: str) -> dict[str, Any]:
        return self._get(f"/jobs/{job_id}", expect=(200,))

    def trace(self, trace_id: str) -> dict[str, Any]:
        """The ``repro-spans/v1`` span-tree document for one trace ID."""
        return self._get(f"/trace/{trace_id}", expect=(200,))

    def result(self, job_id: str) -> dict[str, Any]:
        """The result document of a finished job; raises unless ``done``."""
        status, document = self._request("GET", f"/jobs/{job_id}/result")
        if status == 200:
            return document
        if status == 202:
            raise ServiceError(
                f"job {job_id} is still {document.get('state', 'open')}",
                status=status,
            )
        raise ServiceError(
            document.get("error", f"job {job_id} returned {status}"),
            status=status,
        )

    def wait(
        self, job_id: str, *, timeout: float = 120.0, poll: float = 0.05
    ) -> dict[str, Any]:
        """Block until the job reaches a terminal state; return its result.

        Polls adaptively: the first poll waits ``poll`` seconds, each idle
        poll after that waits 1.5x longer, capped at one second -- quick
        jobs still resolve in ~50ms while long suites cost the service one
        status request per second instead of twenty.

        A failed job raises :class:`ServiceError` with the job's error and
        HTTP status 500.  A timeout raises with the last observed state,
        the job's attempt count and the tail of its timeline, so the error
        message alone says whether the job was stuck queued, mid-retry, or
        genuinely still running.
        """
        deadline = time.monotonic() + timeout
        interval = max(0.001, poll)
        while True:
            document = self.job(job_id)
            if document["state"] in (DONE, FAILED):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                tail = [
                    f"{event.get('state')}@{event.get('wall_time', 0):.3f}"
                    for event in (document.get("timeline") or [])[-4:]
                ]
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job "
                    f"{job_id} (last state {document['state']!r}, "
                    f"attempts {document.get('attempts', 0)}, "
                    f"timeline tail: {' -> '.join(tail) or 'empty'})"
                )
            time.sleep(min(interval, max(0.0, deadline - time.monotonic())))
            interval = min(_POLL_CEILING, interval * _POLL_GROWTH)

    def submit_and_wait(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        timeout: float = 120.0,
        poll: float = 0.05,
        busy_timeout: float = 0.0,
    ) -> dict[str, Any]:
        """Submit one job (waiting out backpressure) and block for its result."""
        job = self.submit(kind, params, busy_timeout=busy_timeout)
        return self.wait(job["id"], timeout=timeout, poll=poll)

"""Content-addressed job scheduling: dedup and vectorized batching.

Two ideas from the runtime carry over to the service queue:

* **Dedup by content address.**  Every job gets a key derived from the
  runtime's content-addressed task keys (callable identity + module source +
  parameter fingerprint -- see :func:`repro.runtime.tasks.task_key` and
  :func:`repro.runtime.cache.execution_key`).  While a job with a given key
  is queued or running, identical submissions attach to it as *followers*:
  the underlying work executes once and every submission observes the same
  result.  Because code versions participate in the keys, editing a kernel
  or experiment driver naturally stops dedup against stale in-flight work.

* **Batching onto the vectorized path.**  Analytic sweep jobs are closed-form
  evaluations over ``(N, M)`` grids.  When a worker claims one, the scheduler
  hands over *every* queued analytic sweep at once; the batch is grouped by
  kernel and each group evaluated as a single
  :func:`repro.runtime.vectorized.cost_grid` array pass over the union grid.
  Elementwise evaluation guarantees each job's slice of the union grid is
  bitwise identical to evaluating that job alone.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.analysis.sweep import normalize_memory_sizes
from repro.core.registry import ComputationSpec, get as registry_get
from repro.exceptions import ConfigurationError, QueueSaturatedError
from repro.obs import spans as obs_spans
from repro.obs.metrics import REGISTRY, SIZE_BUCKETS
from repro.obs.trace import new_trace_id, normalize_trace_id
from repro.runtime.cache import execution_key
from repro.runtime.suites import (
    ExperimentScenario,
    build_kernel,
    get_suite,
)
from repro.runtime.tasks import task_key
from repro.runtime.vectorized import cost_grid
from repro.service.jobs import JOB_KINDS, Job, JobStore
from repro.service.retry import RetryPolicy, policy_for

__all__ = [
    "JobScheduler",
    "SchedulerStats",
    "job_key",
    "normalize_job_params",
    "experiment_scenario",
    "analytic_sweep_payload",
    "evaluate_analytic_sweeps",
    "is_analytic_sweep",
]

ANALYTIC_SWEEP_SCHEMA = "repro-service-analytic-sweep/v1"

# Scheduler instrumentation for ``GET /metrics``.  The gauge reports the
# last-written queue depth of whichever scheduler updated it most recently;
# with the service's one-scheduler-per-process layout that is *the* queue.
_METRIC_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_scheduler_queue_depth", "Jobs waiting in the scheduler queue."
)
_METRIC_SUBMITTED = REGISTRY.counter(
    "repro_jobs_submitted_total", "Jobs accepted for execution.",
    labelnames=("kind",),
)
_METRIC_DEDUP_ATTACHES = REGISTRY.counter(
    "repro_scheduler_dedup_attaches_total",
    "Submissions attached to an identical in-flight job instead of running.",
)
_METRIC_BATCH_JOBS = REGISTRY.histogram(
    "repro_scheduler_batch_jobs",
    "Jobs per claimed batch (analytic sweeps ride together).",
    buckets=SIZE_BUCKETS,
)
_METRIC_JOBS_COMPLETED = REGISTRY.counter(
    "repro_jobs_completed_total", "Jobs finished successfully, by kind.",
    labelnames=("kind",),
)
_METRIC_JOBS_FAILED = REGISTRY.counter(
    "repro_jobs_failed_total", "Jobs finished with an error, by kind.",
    labelnames=("kind",),
)
_METRIC_JOB_RETRIES = REGISTRY.counter(
    "repro_job_retries_total",
    "Jobs requeued for another attempt, by kind and reason.",
    labelnames=("kind", "reason"),
)
_METRIC_JOBS_REJECTED = REGISTRY.counter(
    "repro_jobs_rejected_total",
    "Submissions refused by admission control, by reason.",
    labelnames=("reason",),
)

#: Modules whose source participates in a suite job's content address: the
#: suite definitions themselves hash via ``get_suite``'s module, these cover
#: the engines and drivers the suite lowers onto.
_SUITE_KEY_MODULES = (
    "repro.runtime.engine",
    "repro.runtime.tasks",
    "repro.experiments.arrays_section4",
    "repro.experiments.fft_figure2",
    "repro.experiments.pebble_bounds",
    "repro.experiments.warp_study",
)

_ANALYTIC_KEY_MODULES = ("repro.core.registry", "repro.runtime.vectorized")


# ---------------------------------------------------------------------------
# Job parameter validation and content addressing.
# ---------------------------------------------------------------------------


def normalize_job_params(kind: str, params: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a submission and reduce it to canonical JSON-native params.

    Raises :class:`~repro.exceptions.ConfigurationError` on anything the
    executor could not run, so the API layer can reject bad submissions with
    a 400 instead of queueing a job doomed to fail.
    """
    if kind not in JOB_KINDS:
        known = ", ".join(JOB_KINDS)
        raise ConfigurationError(f"unknown job kind {kind!r}; known kinds: {known}")
    params = dict(params)
    if kind == "suite":
        name = params.get("suite")
        if not isinstance(name, str):
            raise ConfigurationError("suite jobs need a 'suite' name")
        get_suite(name)  # raises on unknown suites
        return {"suite": name}
    if kind == "experiment":
        experiment = params.get("experiment")
        if not isinstance(experiment, str):
            raise ConfigurationError("experiment jobs need an 'experiment' kind")
        extra = params.get("params") or {}
        if not isinstance(extra, Mapping):
            raise ConfigurationError(
                f"experiment 'params' must be a mapping, got {extra!r}"
            )
        # Constructing the scenario validates the kind; building its tasks
        # (below, in job_key) validates the driver parameters.
        experiment_scenario(experiment, extra)
        return {"experiment": experiment, "params": dict(extra)}
    kernel = params.get("kernel")
    if not isinstance(kernel, str):
        raise ConfigurationError("sweep jobs need a 'kernel' name")
    build_kernel(kernel)  # raises on unknown kernels
    memory_sizes = params.get("memory_sizes")
    if memory_sizes is None:
        raise ConfigurationError("sweep jobs need 'memory_sizes'")
    if isinstance(memory_sizes, (str, bytes)) or not isinstance(
        memory_sizes, Sequence
    ):
        # A bare string would be iterated character by character and silently
        # accepted as a grid the caller never asked for.
        raise ConfigurationError(
            f"'memory_sizes' must be a list of integers, got {memory_sizes!r}"
        )
    try:
        sizes = [int(size) for size in normalize_memory_sizes(memory_sizes)]
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"'memory_sizes' must be a list of integers, got {memory_sizes!r}"
        ) from exc
    if params.get("analytic"):
        problem_size = _int_param(params.get("problem_size", 4096), "problem_size")
        if problem_size < 1:
            raise ConfigurationError(
                f"problem_size must be >= 1, got {problem_size!r}"
            )
        return {
            "kernel": kernel,
            "memory_sizes": sizes,
            "problem_size": problem_size,
            "analytic": True,
        }
    scale = params.get("scale")
    if scale is None:
        raise ConfigurationError("measured sweep jobs need a 'scale'")
    return {
        "kernel": kernel,
        "memory_sizes": sizes,
        "scale": _int_param(scale, "scale"),
        "analytic": False,
    }


def _int_param(value: Any, label: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"sweep {label!r} must be an integer, got {value!r}"
        ) from exc


def experiment_scenario(experiment: str, params: Mapping[str, Any]) -> ExperimentScenario:
    return ExperimentScenario(
        name=f"job-{experiment}", experiment=experiment, params=dict(params)
    )


def is_analytic_sweep(job: Job) -> bool:
    return job.kind == "sweep" and bool(job.params.get("analytic"))


def _digest(parts: Sequence[str]) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def job_key(kind: str, params: Mapping[str, Any]) -> str:
    """Content address of one job, built from the runtime's task keys.

    ``params`` must already be canonical (:func:`normalize_job_params`).
    """
    if kind == "suite":
        return task_key(
            get_suite, {"name": params["suite"]}, modules=_SUITE_KEY_MODULES
        )
    if kind == "experiment":
        scenario = experiment_scenario(params["experiment"], params["params"])
        keys = sorted(task.key() for task in scenario.tasks())
        return _digest(["experiment", *keys])
    if params.get("analytic"):
        return task_key(
            analytic_sweep_payload,
            {
                "kernel": params["kernel"],
                "memory_sizes": params["memory_sizes"],
                "problem_size": params["problem_size"],
            },
            modules=_ANALYTIC_KEY_MODULES,
        )
    kernel = build_kernel(params["kernel"])
    keys = []
    for size in params["memory_sizes"]:
        kernel.validate_memory(size)
        problem = kernel.problem_for_memory(size, params["scale"])
        keys.append(execution_key(kernel, size, problem))
    return _digest(["sweep", json.dumps(params, sort_keys=True), *keys])


# ---------------------------------------------------------------------------
# The vectorized analytic-sweep path.
# ---------------------------------------------------------------------------


def _registry_spec(kernel: str) -> ComputationSpec:
    # The registry may know a kernel under a different name than the CLI
    # factory (e.g. sparse_matvec -> spmv); resolve through the kernel class.
    registry_name = build_kernel(kernel).registry_name or kernel
    return registry_get(registry_name)


def _analytic_rows(
    memory_sizes: Sequence[int],
    *,
    costs: Any,
    intensities: np.ndarray,
    row_index: int,
    column_of: Mapping[int, int],
) -> list[dict[str, float]]:
    rows = []
    for size in memory_sizes:
        j = column_of[size]
        rows.append(
            {
                "memory_words": float(size),
                "model_intensity": float(intensities[j]),
                "cost_intensity": float(costs.intensity[row_index, j]),
                "compute_ops": float(costs.compute_ops[row_index, j]),
                "io_words": float(costs.io_words[row_index, j]),
            }
        )
    return rows


def analytic_sweep_payload(
    kernel: str, memory_sizes: Sequence[int], problem_size: int
) -> dict[str, Any]:
    """Evaluate one analytic sweep job (also the dedup key's callable)."""
    (payload,) = evaluate_analytic_sweeps(
        [{"kernel": kernel, "memory_sizes": list(memory_sizes), "problem_size": int(problem_size)}]
    )
    return payload


def evaluate_analytic_sweeps(
    jobs: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Evaluate many analytic sweep jobs, one array pass per kernel group.

    Jobs sharing a kernel are merged onto the union ``(N, M)`` grid and
    evaluated with a single :func:`repro.runtime.vectorized.cost_grid` call;
    each job's rows are then sliced back out of the batch.  Payloads come
    back in submission order and carry the size of the batch they rode in.
    """
    groups: dict[str, list[int]] = {}
    for index, job in enumerate(jobs):
        groups.setdefault(job["kernel"], []).append(index)

    payloads: list[dict[str, Any] | None] = [None] * len(jobs)
    for kernel, indices in groups.items():
        spec = _registry_spec(kernel)
        problem_sizes = sorted({int(jobs[i]["problem_size"]) for i in indices})
        memories = sorted(
            {int(size) for i in indices for size in jobs[i]["memory_sizes"]}
        )
        row_of = {size: i for i, size in enumerate(problem_sizes)}
        column_of = {size: j for j, size in enumerate(memories)}
        costs = cost_grid(spec, problem_sizes, memories)
        intensities = spec.batch_intensity(np.asarray(memories, dtype=float))
        for i in indices:
            job = jobs[i]
            payloads[i] = {
                "schema": ANALYTIC_SWEEP_SCHEMA,
                "kernel": job["kernel"],
                "computation": spec.name,
                "problem_size": int(job["problem_size"]),
                "memory_sizes": [int(size) for size in job["memory_sizes"]],
                "rows": _analytic_rows(
                    job["memory_sizes"],
                    costs=costs,
                    intensities=intensities,
                    row_index=row_of[int(job["problem_size"])],
                    column_of=column_of,
                ),
                "batch_jobs": len(jobs),
                "batch_grid_points": len(problem_sizes) * len(memories),
            }
    return payloads  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# The scheduler proper.
# ---------------------------------------------------------------------------


@dataclass
class SchedulerStats:
    """Counters accumulated over the lifetime of a :class:`JobScheduler`."""

    submitted: int = 0
    deduped: int = 0
    batches: int = 0
    batched_jobs: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    rejected: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "rejected": self.rejected,
        }


class JobScheduler:
    """FIFO job queue with dedup, batching, retry backoff and admission control.

    All state transitions happen under one condition variable, so a follower
    can never attach to a primary after its result has been fanned out.

    ``max_queue_depth`` bounds the number of *waiting* jobs: a submission
    that would exceed it is shed with :class:`QueueSaturatedError` (HTTP
    429) and a ``retry_after`` estimate -- unless it deduplicates against
    in-flight work, which is always admitted (a follower consumes no queue
    slot or compute, so shedding it would only waste the work already
    underway).  Retried jobs re-enter the queue with a per-job ``not
    before`` stamp from their :class:`~repro.service.retry.RetryPolicy`
    backoff; :meth:`claim` skips held-back jobs until their delay elapses.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        max_queue_depth: int | None = None,
        workers_hint: int = 2,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {max_queue_depth!r}"
            )
        self.store = store
        self.max_queue_depth = max_queue_depth
        self.workers_hint = max(1, workers_hint)
        self._cond = threading.Condition()
        self._queue: deque[str] = deque()
        self._not_before: dict[str, float] = {}  # job id -> monotonic stamp
        self._inflight: dict[str, str] = {}  # job key -> primary job id
        self._followers: dict[str, list[str]] = {}  # primary id -> follower ids
        self._closed = False
        self._avg_run_seconds: float | None = None
        self.stats = SchedulerStats()

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def retry_after_estimate(self) -> float:
        """Seconds a shed client should wait before resubmitting."""
        with self._cond:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        # Queue depth divided by worker parallelism, scaled by the EWMA of
        # recent job run times; clamped to something a client can act on.
        average = self._avg_run_seconds or 1.0
        estimate = (len(self._queue) + 1) * average / self.workers_hint
        return round(min(60.0, max(1.0, estimate)), 1)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: Mapping[str, Any],
        *,
        trace_id: str | None = None,
    ) -> Job:
        """Create a job; attach it to an identical in-flight one if present.

        Every submission carries a trace ID from here on: the caller's
        (validated) if one was supplied, a freshly minted one otherwise.
        Followers keep their own trace -- dedup shares the *work*, not the
        identity of the request that asked for it.
        """
        trace_id = normalize_trace_id(trace_id) if trace_id else new_trace_id()
        submit_wall = time.time()
        submit_mono = time.monotonic()
        params = normalize_job_params(kind, params)
        key = job_key(kind, params)  # may be slow; computed outside the lock
        policy = policy_for(kind)
        with self._cond:
            primary_id = self._inflight.get(key)
            if primary_id is not None:
                # Load shedding prefers attaching duplicates over admitting
                # new keys: a follower is free, so it bypasses the depth
                # check even when the queue is saturated.
                self.stats.submitted += 1
                _METRIC_SUBMITTED.labels(kind=kind).inc()
                job = self.store.create(
                    kind, params, key=key, deduped_into=primary_id,
                    trace_id=trace_id,
                )
                self._followers.setdefault(primary_id, []).append(job.id)
                self.stats.deduped += 1
                _METRIC_DEDUP_ATTACHES.inc()
                self._open_root_span(
                    job,
                    submit_wall,
                    submit_mono,
                    event="scheduler.dedup-attach",
                    primary_id=primary_id,
                )
                return job
            if (
                self.max_queue_depth is not None
                and len(self._queue) >= self.max_queue_depth
            ):
                self.stats.rejected += 1
                _METRIC_JOBS_REJECTED.labels(reason="saturated").inc()
                raise QueueSaturatedError(
                    f"queue is saturated ({len(self._queue)} jobs waiting, "
                    f"limit {self.max_queue_depth}); retry later",
                    retry_after=self._retry_after_locked(),
                )
            self.stats.submitted += 1
            _METRIC_SUBMITTED.labels(kind=kind).inc()
            job = self.store.create(
                kind, params, key=key, trace_id=trace_id,
                retry=policy.as_dict(),
            )
            self._inflight[key] = job.id
            self._queue.append(job.id)
            _METRIC_QUEUE_DEPTH.set(len(self._queue))
            self._cond.notify()
            self._open_root_span(
                job, submit_wall, submit_mono, event="scheduler.enqueue"
            )
            return job

    def _open_root_span(
        self,
        job: Job,
        submit_wall: float,
        submit_mono: float,
        *,
        event: str,
        primary_id: str | None = None,
    ) -> None:
        """Start the job's root span (covers submit -> terminal state).

        Every submission gets its own root on its own trace -- followers
        included, since dedup shares the *work* but not the request
        identity.  The root is stashed as a transient attribute on the job
        (never journaled) and finished by :meth:`_complete`; the validate/
        key/enqueue work done so far is recorded as an already-measured
        child so the tree shows admission cost next to queue wait.
        """
        root = obs_spans.start_span(
            "service.submit",
            kind="api",
            trace_id=job.trace_id,
            attributes={"job_id": job.id, "job_kind": job.kind},
        )
        if root is None:
            return
        job.root_span = root
        obs_spans.record_span(
            event,
            "scheduler",
            trace_id=job.trace_id,
            parent_id=root.span_id,
            start_wall=submit_wall,
            duration=max(0.0, time.monotonic() - submit_mono),
            attributes={"primary_id": primary_id} if primary_id else None,
        )

    def requeue(self, job: Job) -> None:
        """Re-enqueue a recovered job under its existing id (restart path).

        Recovered duplicates are not re-deduplicated against each other: each
        runs as its own primary (the caches make the repeats cheap), which
        keeps recovery independent of replay order.
        """
        key = job.key
        if key is None:  # journal predates key persistence; recompute
            key = job_key(job.kind, normalize_job_params(job.kind, job.params))
        with self._cond:
            self.store.requeue(job, reason="restart-recovery")
            job.key = key
            self._inflight.setdefault(key, job.id)
            self._queue.append(job.id)
            _METRIC_QUEUE_DEPTH.set(len(self._queue))
            self._cond.notify()

    def retry(self, job: Job, *, reason: str) -> bool:
        """Requeue a failed attempt if the job's retry policy allows it.

        Returns ``False`` (caller should fail the job instead) once the
        attempt budget or deadline is exhausted.  The job keeps its id, its
        key (so followers stay attached and new duplicates keep attaching)
        and its incremented attempt count; it becomes claimable only after
        the policy's deterministic backoff delay.
        """
        policy = (
            RetryPolicy.from_dict(job.retry) if job.retry else policy_for(job.kind)
        )
        age = time.time() - job.created_at
        if not policy.allows_retry(job.attempts, age):
            return False
        delay = policy.backoff_delay(job.attempts, token=job.id)
        with self._cond:
            self.store.requeue(job, reason=reason)
            if job.key is not None:
                self._inflight.setdefault(job.key, job.id)
            self._not_before[job.id] = time.monotonic() + delay
            self._queue.append(job.id)
            self.stats.retried += 1
            _METRIC_JOB_RETRIES.labels(kind=job.kind, reason=reason).inc()
            _METRIC_QUEUE_DEPTH.set(len(self._queue))
            self._cond.notify()
        return True

    # -- the worker side -----------------------------------------------------

    def _pop_ready(self) -> str | None:
        """Remove and return the first claimable job id (holds the lock)."""
        now = time.monotonic()
        for index, job_id in enumerate(self._queue):
            if self._not_before.get(job_id, 0.0) <= now:
                del self._queue[index]
                self._not_before.pop(job_id, None)
                return job_id
        return None

    def claim(self, timeout: float | None = None) -> list[Job]:
        """Pop the next unit of work, marking every claimed job running.

        Returns one job -- or, when the head of the queue is an analytic
        sweep, every *claimable* queued analytic sweep as one batch (jobs
        still inside their retry-backoff window stay queued).  Returns
        ``[]`` on timeout or shutdown.
        """
        with self._cond:
            end = None if timeout is None else time.monotonic() + timeout
            while True:
                head = self._pop_ready()
                if head is not None:
                    break
                if self._closed:
                    return []
                now = time.monotonic()
                if end is not None and now >= end:
                    return []
                wait = None if end is None else end - now
                held = [
                    self._not_before[job_id] - now
                    for job_id in self._queue
                    if self._not_before.get(job_id, 0.0) > now
                ]
                if held:
                    soonest = max(0.001, min(held))
                    wait = soonest if wait is None else min(wait, soonest)
                self._cond.wait(wait)
            batch = [self.store.get(head)]
            if is_analytic_sweep(batch[0]):
                now = time.monotonic()
                rest: deque[str] = deque()
                while self._queue:
                    job_id = self._queue.popleft()
                    job = self.store.get(job_id)
                    if (
                        is_analytic_sweep(job)
                        and self._not_before.get(job_id, 0.0) <= now
                    ):
                        self._not_before.pop(job_id, None)
                        batch.append(job)
                    else:
                        rest.append(job_id)
                self._queue = rest
                if len(batch) > 1:
                    self.stats.batches += 1
                    self.stats.batched_jobs += len(batch)
            _METRIC_QUEUE_DEPTH.set(len(self._queue))
            _METRIC_BATCH_JOBS.observe(len(batch))
            claim_wall = time.time()
            for job in batch:
                self.store.mark_running(job)
                # A zero-length marker on each claimed job's trace: when the
                # claim rode a vectorized batch, the trace says so (and how
                # many jobs shared the array pass).
                root = getattr(job, "root_span", None)
                if root is not None:
                    obs_spans.record_span(
                        "scheduler.batch",
                        "scheduler",
                        trace_id=job.trace_id,
                        parent_id=root.span_id,
                        start_wall=claim_wall,
                        duration=0.0,
                        attributes={"batch_jobs": len(batch)},
                    )
            return batch

    def finish(self, job: Job, result: Any) -> None:
        """Complete a job; its followers observe the same result."""
        self._complete(job, result=result, error=None)

    def fail(self, job: Job, error: str) -> None:
        """Fail a job; its followers observe the same error."""
        self._complete(job, result=None, error=error)

    def _complete(self, job: Job, *, result: Any, error: str | None) -> None:
        # Detach the followers and release the key under the lock -- no new
        # follower can attach once the key is gone -- but persist the (large)
        # result snapshots outside it, so submit/claim never stall behind
        # journal writes.
        with self._cond:
            follower_ids = self._followers.pop(job.id, [])
            if job.key is not None and self._inflight.get(job.key) == job.id:
                del self._inflight[job.key]
            if job.started_at is not None:
                # EWMA of run times feeds the 429 Retry-After estimate.
                elapsed = max(0.0, time.time() - job.started_at)
                self._avg_run_seconds = (
                    elapsed
                    if self._avg_run_seconds is None
                    else 0.8 * self._avg_run_seconds + 0.2 * elapsed
                )
            if error is None:
                self.stats.completed += 1 + len(follower_ids)
                _METRIC_JOBS_COMPLETED.labels(kind=job.kind).inc(
                    1 + len(follower_ids)
                )
            else:
                self.stats.failed += 1 + len(follower_ids)
                _METRIC_JOBS_FAILED.labels(kind=job.kind).inc(
                    1 + len(follower_ids)
                )
        for target in (job, *(self.store.get(fid) for fid in follower_ids)):
            if error is None:
                self.store.mark_done(target, result)
            else:
                self.store.mark_failed(target, error)
            # Close the submission's root span (primary and followers each
            # own one): the root's duration is the client-visible latency,
            # submit to terminal state.
            root = getattr(target, "root_span", None)
            if root is not None:
                root.set(state=target.state, attempts=target.attempts)
                if error is not None:
                    root.set(error=error)
                root.finish()
                target.root_span = None

    def close(self) -> None:
        """Wake every waiting worker so it can observe shutdown."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def reopen(self) -> None:
        """Allow ``claim`` to block again after a close (pool restart)."""
        with self._cond:
            self._closed = False

"""Retry policies: bounded attempts, exponential backoff, per-kind deadlines.

A :class:`RetryPolicy` answers two questions for a job that just failed in
a *transient* way (a worker crash, an injected fault, an I/O error):

* **may it run again?** -- ``allows_retry(attempts, age_seconds)``: attempts
  are bounded by ``max_attempts`` (counting every execution start), and the
  job's total wall-clock age is bounded by ``deadline_seconds`` so a job
  cannot retry forever even if each attempt is cheap.  The deadline is
  enforced at retry-decision time (a running attempt is never interrupted):
  it bounds when the *next* attempt may start, not how long one may run.
* **when?** -- ``backoff_delay(attempt, token=...)``: exponential in the
  attempt number, capped at ``max_delay``, with *deterministic jitter*: the
  jitter fraction is derived from ``sha256(token:attempt)``, so two jobs
  retrying after the same crash spread out (no thundering herd) while any
  single job's schedule is exactly reproducible -- the property the seeded
  chaos suite asserts on.

The policy a job was admitted under is recorded on the job (and therefore
in the journal), so a restarted service honors the budget the job started
with rather than whatever the defaults have become since.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import ConfigurationError

__all__ = [
    "RetryPolicy",
    "DEFAULT_POLICIES",
    "policy_for",
    "is_transient",
    "transient_reason",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry parameters for one job."""

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError(
                "backoff delays must be >= 0, got "
                f"base={self.base_delay!r} max={self.max_delay!r}"
            )
        if self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"max_delay {self.max_delay!r} < base_delay {self.base_delay!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds!r}"
            )

    def allows_retry(self, attempts: int, age_seconds: float) -> bool:
        """May a job that has started ``attempts`` times start once more?"""
        if attempts >= self.max_attempts:
            return False
        if self.deadline_seconds is not None and age_seconds >= self.deadline_seconds:
            return False
        return True

    def backoff_delay(self, attempt: int, *, token: str = "") -> float:
        """Seconds to hold a job back before retry number ``attempt``.

        ``attempt`` counts completed attempts (1 after the first failure).
        The jitter fraction in ``[0.5, 1.0]`` comes from
        ``sha256(token:attempt)``, not a live RNG: deterministic per
        (token, attempt), decorrelated across tokens.
        """
        if attempt < 1:
            attempt = 1
        base = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        digest = hashlib.sha256(f"{token}:{attempt}".encode()).hexdigest()
        fraction = int(digest[:8], 16) / 0xFFFFFFFF
        return base * (0.5 + 0.5 * fraction)

    def as_dict(self) -> dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_dict(cls, fields: Mapping[str, Any]) -> "RetryPolicy":
        return cls(
            max_attempts=int(fields.get("max_attempts", 3)),
            base_delay=float(fields.get("base_delay", 0.05)),
            max_delay=float(fields.get("max_delay", 2.0)),
            deadline_seconds=(
                None
                if fields.get("deadline_seconds") is None
                else float(fields["deadline_seconds"])
            ),
        )


#: Per-kind defaults: the heavier the job, the fewer attempts and the wider
#: the deadline.  Suites take minutes, so one retry is all a crashed suite
#: gets before a human should look at the worker logs.
DEFAULT_POLICIES: dict[str, RetryPolicy] = {
    "sweep": RetryPolicy(
        max_attempts=3, base_delay=0.05, max_delay=2.0, deadline_seconds=300.0
    ),
    "experiment": RetryPolicy(
        max_attempts=3, base_delay=0.1, max_delay=5.0, deadline_seconds=600.0
    ),
    "suite": RetryPolicy(
        max_attempts=2, base_delay=0.25, max_delay=10.0, deadline_seconds=1800.0
    ),
}

_FALLBACK_POLICY = RetryPolicy()


def policy_for(kind: str) -> RetryPolicy:
    """The default retry policy for one job kind."""
    return DEFAULT_POLICIES.get(kind, _FALLBACK_POLICY)


# ---------------------------------------------------------------------------
# Transient-failure classification.
# ---------------------------------------------------------------------------

#: Failure shapes worth a retry: environmental, not deterministic.  A job
#: that raises ``ConfigurationError`` (bad params) or a numerical error will
#: fail identically on every attempt and is failed immediately instead.
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    OSError,
    TimeoutError,
    ConnectionError,
)


def is_transient(exc: BaseException) -> bool:
    """Would retrying plausibly change the outcome of this failure?"""
    from repro.faults.injector import InjectedFaultError

    return isinstance(exc, (*_TRANSIENT_TYPES, InjectedFaultError))


def transient_reason(exc: BaseException) -> str:
    """A low-cardinality reason label for the retry metrics."""
    from repro.faults.injector import InjectedFaultError

    if isinstance(exc, InjectedFaultError):
        return "injected-fault"
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, ConnectionError):
        return "connection-error"
    if isinstance(exc, OSError):
        return "os-error"
    return type(exc).__name__

"""The job model and store behind the ``repro.service`` layer.

A :class:`Job` is one unit of service work -- a kernel sweep, an experiment
driver, or a whole scenario suite -- moving through the state machine

    queued -> running -> done | failed

with one extra edge, ``queued -> done``/``queued -> failed``: a submission
that the scheduler deduplicated against an identical in-flight job never
runs itself, it observes the primary's outcome directly.

The :class:`JobStore` is a thread-safe in-memory map with optional JSON-lines
persistence: every state transition appends one self-contained snapshot line
to the state file, and a restarted service replays the file to recover
terminal jobs (results included) and requeue the ones that were interrupted.
Appends are single ``write`` calls of one line, so a crash can at worst leave
one truncated line at the tail, which replay skips.

Every state transition is stamped twice -- wall clock (``time.time``, for
humans and cross-process ordering) and monotonic (``time.monotonic``, for
durations immune to clock steps) -- into the job's ``timeline``.  The
timeline answers "why was this job slow" from ``GET /jobs/{id}``: how long
it sat queued, how long it ran, when it was requeued after a crash.  Old
journals written before timelines existed replay gracefully: a best-effort
timeline is reconstructed from the persisted ``created_at`` /
``started_at`` / ``finished_at`` wall stamps with ``monotonic=None``, and
duration computation falls back accordingly.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ConfigurationError, ServiceError
from repro.faults.injector import torn_write_armed
from repro.obs.metrics import REGISTRY

__all__ = [
    "Job",
    "JobStore",
    "JOB_KINDS",
    "JOB_STATES",
    "MAX_TIMELINE_EVENTS",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
]

#: The work shapes the service accepts (see repro.service.scheduler).
JOB_KINDS = ("sweep", "experiment", "suite")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)

#: Legal state-machine edges; anything else is a programming error.
_TRANSITIONS = {
    QUEUED: {RUNNING, DONE, FAILED},
    RUNNING: {DONE, FAILED},
    DONE: set(),
    FAILED: set(),
}

STATE_SCHEMA = "repro-service-job/v1"

#: Upper bound on per-job timeline events.  A job riding the retry path for
#: hours would otherwise grow its timeline (and every journal snapshot, which
#: embeds it whole) without bound; older transitions are compacted away and
#: counted in ``Job.truncated_transitions`` instead.
MAX_TIMELINE_EVENTS = 40

#: Journal appends that could not be written (disk full, permissions).  The
#: journal is best-effort durable: a failed append degrades recovery, never
#: a live job, and the metric is how operators find out.
_METRIC_JOURNAL_WRITE_FAILURES = REGISTRY.counter(
    "repro_journal_write_failures_total",
    "Journal snapshot appends that failed with an I/O error.",
)
_METRIC_JOURNAL_TORN_REPAIRS = REGISTRY.counter(
    "repro_journal_torn_tail_repairs_total",
    "Torn journal tail lines terminated before appending new snapshots.",
)


def _new_job_id() -> str:
    return uuid.uuid4().hex[:12]


def _timeline_event(state: str, **extra: Any) -> dict[str, Any]:
    """One timeline entry: the state entered plus both clock stamps.

    ``extra`` carries transition context -- ``attempt`` on ``running``
    events, ``reason`` on requeues -- and rides along in the journal.
    """
    event = {
        "state": state,
        "wall_time": time.time(),
        "monotonic": time.monotonic(),
    }
    event.update({key: value for key, value in extra.items() if value is not None})
    return event


def _seconds_between(earlier: dict[str, Any], later: dict[str, Any]) -> float | None:
    """Duration between two timeline events, preferring monotonic stamps.

    Monotonic differences are only meaningful within one process; a requeue
    after a restart pairs an old process's stamp with a new one, which can
    even be negative.  Such pairs (and events replayed from pre-timeline
    journals with ``monotonic=None``) fall back to wall-clock differences,
    and to ``None`` when not even those are available.
    """
    for clock in ("monotonic", "wall_time"):
        first, second = earlier.get(clock), later.get(clock)
        if first is not None and second is not None and second >= first:
            return second - first
    return None


def _replayed_timeline(fields: dict[str, Any]) -> list[dict[str, Any]]:
    """Reconstruct raw timeline events from one persisted snapshot.

    Persisted timelines carry the derived ``seconds_in_state`` field, which
    must not survive replay (it is recomputed from whatever events follow).
    Journals written before timelines existed have no ``timeline`` at all;
    for those, synthesize events from the coarse per-job wall stamps with
    ``monotonic=None`` -- the backfill path the duration computation
    degrades around.
    """
    persisted = fields.get("timeline")
    if isinstance(persisted, list) and persisted:
        events = []
        for event in persisted:
            if isinstance(event, dict) and "state" in event:
                replayed = {
                    "state": event["state"],
                    "wall_time": event.get("wall_time"),
                    "monotonic": event.get("monotonic"),
                }
                for extra in ("attempt", "reason"):
                    if event.get(extra) is not None:
                        replayed[extra] = event[extra]
                events.append(replayed)
        if events:
            return events
    events = []
    state = fields.get("state", QUEUED)
    created, started = fields.get("created_at"), fields.get("started_at")
    finished = fields.get("finished_at")
    if created is not None:
        events.append({"state": QUEUED, "wall_time": created, "monotonic": None})
    if started is not None:
        events.append({"state": RUNNING, "wall_time": started, "monotonic": None})
    if finished is not None and state in (DONE, FAILED):
        events.append({"state": state, "wall_time": finished, "monotonic": None})
    return events


@dataclass
class Job:
    """One service job and its full observable history."""

    id: str
    kind: str
    params: dict[str, Any]
    state: str = QUEUED
    key: str | None = None
    deduped_into: str | None = None
    trace_id: str | None = None
    result: Any = None
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    timeline: list[dict[str, Any]] = field(default_factory=list)
    #: Timeline events dropped by compaction (see ``MAX_TIMELINE_EVENTS``).
    truncated_transitions: int = 0
    #: Execution attempts started (each ``queued -> running`` transition).
    attempts: int = 0
    #: The retry policy the job was admitted under, as a plain dict so it
    #: journals verbatim (see :mod:`repro.service.retry`).
    retry: dict[str, Any] | None = None

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    @property
    def elapsed_seconds(self) -> float | None:
        """Wall-clock from submission to completion (``None`` while open)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.created_at

    def record_event(self, state: str, **extra: Any) -> None:
        """Append one stamped state-transition event to the timeline.

        The timeline is compacted to the most recent
        :data:`MAX_TIMELINE_EVENTS` entries -- the recent history is what
        answers "why is this job slow", while a long-retrying job's full
        churn would bloat every journal snapshot.  Dropped events are
        counted in :attr:`truncated_transitions` (journaled, so the count
        survives replay).
        """
        self.timeline.append(_timeline_event(state, **extra))
        overflow = len(self.timeline) - MAX_TIMELINE_EVENTS
        if overflow > 0:
            del self.timeline[:overflow]
            self.truncated_transitions += overflow

    def timeline_payload(self) -> list[dict[str, Any]]:
        """The timeline with per-state durations, for API consumers.

        Each event reports ``seconds_in_state``: the time until the *next*
        event (``None`` for the last event -- the job is either still in
        that state or it is terminal).
        """
        payload = []
        for i, event in enumerate(self.timeline):
            entry = dict(event)
            entry["seconds_in_state"] = (
                _seconds_between(event, self.timeline[i + 1])
                if i + 1 < len(self.timeline)
                else None
            )
            payload.append(entry)
        return payload

    def as_dict(self, *, include_result: bool = False) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "state": self.state,
            "key": self.key,
            "deduped_into": self.deduped_into,
            "trace_id": self.trace_id,
            "error": self.error,
            "attempts": self.attempts,
            "retry": self.retry,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": self.elapsed_seconds,
            "timeline": self.timeline_payload(),
            "truncated_transitions": self.truncated_transitions,
            "has_result": self.result is not None,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobStore:
    """Thread-safe job map with optional JSON-lines snapshot persistence."""

    def __init__(self, state_path: str | Path | None = None) -> None:
        self._jobs: dict[str, Job] = {}
        self._lock = threading.RLock()
        self.state_path = Path(state_path).expanduser() if state_path else None
        # A crash mid-append leaves a torn (newline-less) tail line.  Detect
        # it now so the next append terminates it first -- otherwise the new
        # snapshot would concatenate onto the torn prefix, turning one
        # harmless crash artifact into an unparseable mid-file line.
        self._tail_torn = False
        if self.state_path is not None and self.state_path.exists():
            self._tail_torn = self._detect_torn_tail()
            self._replay()

    def _detect_torn_tail(self) -> bool:
        try:
            with self.state_path.open("rb") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                if size == 0:
                    return False
                handle.seek(size - 1)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job {job_id!r}", status=404) from None

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._jobs

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def jobs(self) -> list[Job]:
        """Every job, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def state_counts(self) -> dict[str, int]:
        counts = dict.fromkeys(JOB_STATES, 0)
        for job in self.jobs():
            counts[job.state] += 1
        return counts

    def interrupted(self) -> list[Job]:
        """Jobs a previous process left open (to be requeued on recovery)."""
        return [job for job in self.jobs() if not job.terminal]

    # -- transitions ---------------------------------------------------------

    def create(
        self,
        kind: str,
        params: dict[str, Any],
        *,
        key: str | None = None,
        deduped_into: str | None = None,
        trace_id: str | None = None,
        retry: dict[str, Any] | None = None,
    ) -> Job:
        if kind not in JOB_KINDS:
            known = ", ".join(JOB_KINDS)
            raise ConfigurationError(
                f"unknown job kind {kind!r}; known kinds: {known}"
            )
        job = Job(
            id=_new_job_id(),
            kind=kind,
            params=dict(params),
            key=key,
            deduped_into=deduped_into,
            trace_id=trace_id,
            retry=dict(retry) if retry else None,
        )
        job.record_event(QUEUED)
        with self._lock:
            self._jobs[job.id] = job
            self._persist(job)
        return job

    def mark_running(self, job: Job) -> None:
        self._transition(job, RUNNING)

    def mark_done(self, job: Job, result: Any) -> None:
        self._transition(job, DONE, result=result)

    def mark_failed(self, job: Job, error: str) -> None:
        self._transition(job, FAILED, error=error)

    def requeue(self, job: Job, *, reason: str | None = None) -> None:
        """Reset an open job to ``queued`` (restart recovery, crash retry).

        ``reason`` names why -- ``worker-crash``, ``restart-recovery``, a
        transient error class -- and is stamped on the timeline event, so
        the journal records every requeue with its cause.
        """
        with self._lock:
            if job.terminal:
                raise ConfigurationError(
                    f"job {job.id} is {job.state}; only open jobs requeue"
                )
            job.state = QUEUED
            job.started_at = None
            job.deduped_into = None
            job.record_event(QUEUED, reason=reason)
            self._persist(job)

    def _transition(
        self, job: Job, state: str, *, result: Any = None, error: str | None = None
    ) -> None:
        with self._lock:
            if state not in _TRANSITIONS[job.state]:
                raise ConfigurationError(
                    f"job {job.id} cannot move {job.state!r} -> {state!r}"
                )
            job.state = state
            extra: dict[str, Any] = {}
            if state == RUNNING:
                job.started_at = time.time()
                job.attempts += 1
                extra["attempt"] = job.attempts
            else:
                job.finished_at = time.time()
                job.result = result
                job.error = error
            job.record_event(state, **extra)
            self._persist(job)

    # -- persistence ---------------------------------------------------------

    def _persist(self, job: Job) -> None:
        if self.state_path is None:
            return
        snapshot = {"schema": STATE_SCHEMA, "job": job.as_dict(include_result=True)}
        line = json.dumps(snapshot, sort_keys=True, default=str) + "\n"
        data = line.encode()
        try:
            self.state_path.parent.mkdir(parents=True, exist_ok=True)
            with self.state_path.open("ab") as handle:
                if self._tail_torn:
                    # Terminate the torn line a crash (or injected torn
                    # write) left, so it stays one skippable bad line
                    # instead of corrupting this snapshot.
                    handle.write(b"\n")
                    self._tail_torn = False
                    _METRIC_JOURNAL_TORN_REPAIRS.inc()
                if torn_write_armed(site=f"journal:{job.id}"):
                    # Chaos mode: emulate a crash mid-append by persisting
                    # only a prefix of the line and "losing" the rest.
                    handle.write(data[: max(1, len(data) // 2)])
                    self._tail_torn = True
                    return
                handle.write(data)
        except OSError:
            # Best-effort durability: an unwritable journal must not take
            # down live jobs.  Recovery for this transition is lost; the
            # metric (and repro doctor) is how anyone finds out.
            _METRIC_JOURNAL_WRITE_FAILURES.inc()

    def _replay(self) -> None:
        for snapshot in self._read_snapshots():
            fields = snapshot["job"]
            job = Job(
                id=fields["id"],
                kind=fields["kind"],
                params=fields.get("params") or {},
                state=fields.get("state", QUEUED),
                key=fields.get("key"),
                deduped_into=fields.get("deduped_into"),
                trace_id=fields.get("trace_id"),
                result=fields.get("result"),
                error=fields.get("error"),
                created_at=fields.get("created_at") or time.time(),
                started_at=fields.get("started_at"),
                finished_at=fields.get("finished_at"),
                timeline=_replayed_timeline(fields),
                truncated_transitions=int(fields.get("truncated_transitions") or 0),
                attempts=int(fields.get("attempts") or 0),
                retry=fields.get("retry") or None,
            )
            self._jobs[job.id] = job  # later snapshots win

    def _read_snapshots(self) -> Iterator[dict[str, Any]]:
        for line in self.state_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                snapshot = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated tail line from a crashed writer
            if (
                isinstance(snapshot, dict)
                and snapshot.get("schema") == STATE_SCHEMA
                and isinstance(snapshot.get("job"), dict)
                and "id" in snapshot["job"]
            ):
                yield snapshot

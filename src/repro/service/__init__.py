"""``repro.service`` -- the async job-queue service layer over the runtime.

Kung's balance principle asks for an I/O front end matched to the compute
engine.  The repo's compute engine (vectorized analytic paths, pooled
content-addressed tasks, on-disk result caches) was previously fronted only
by one-shot CLI processes; this package is the long-lived front end:

* :mod:`repro.service.jobs` -- the :class:`Job` state machine and the
  thread-safe :class:`JobStore` with JSON-lines restart recovery;
* :mod:`repro.service.scheduler` -- content-addressed dedup (identical
  in-flight submissions run once) and batching of analytic sweeps onto the
  vectorized evaluator;
* :mod:`repro.service.workers` -- the executor/worker-pool bridge onto
  :class:`~repro.runtime.tasks.TaskRunner` and
  :class:`~repro.runtime.engine.SweepRunner`, plus the :class:`JobService`
  facade;
* :mod:`repro.service.api` -- stdlib JSON-over-HTTP endpoints
  (``POST /jobs``, ``GET /jobs/{id}``, ``GET /jobs/{id}/result``,
  ``GET /healthz``, ``GET /cache/stats``, ``GET /metrics``);
* :mod:`repro.service.client` -- the blocking Python client, with
  transient-connection retries, backpressure-aware submission and
  adaptive result polling;
* :mod:`repro.service.retry` -- per-kind :class:`RetryPolicy` budgets
  (bounded attempts, deterministic-jitter backoff, deadlines) that the
  scheduler and the supervising :class:`WorkerPool` enforce.

Resilience is part of the contract: the scheduler's queue can be bounded
(saturated submissions shed with 429 + ``Retry-After``), crashed worker
threads are reaped and their jobs retried, and the deterministic fault
injector in :mod:`repro.faults` can rehearse all of it reproducibly.

Observability rides on :mod:`repro.obs`: every submission carries a trace
ID (minted or taken from ``X-Repro-Trace``) through the scheduler, the
journal and the executor's task labels; ``GET /jobs/{id}`` exposes the
per-job state-transition timeline; ``GET /metrics`` exposes the process
metrics registry; ``repro doctor`` diagnoses cache/journal/worker health.
See ``docs/operations.md``.

Everything is stdlib-only (``threading`` + ``http.server``): no web
framework is required to run ``repro serve``.
"""

from repro.exceptions import QueueSaturatedError
from repro.service.api import ServiceHTTPServer, serve
from repro.service.client import ServiceClient
from repro.service.jobs import (
    DONE,
    FAILED,
    JOB_KINDS,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobStore,
)
from repro.service.retry import (
    DEFAULT_POLICIES,
    RetryPolicy,
    is_transient,
    policy_for,
    transient_reason,
)
from repro.service.scheduler import (
    JobScheduler,
    SchedulerStats,
    analytic_sweep_payload,
    evaluate_analytic_sweeps,
    job_key,
    normalize_job_params,
)
from repro.service.workers import (
    ExecutorStats,
    JobExecutor,
    JobService,
    WorkerPool,
)

__all__ = [
    "DEFAULT_POLICIES",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "ExecutorStats",
    "Job",
    "JobExecutor",
    "JobScheduler",
    "JobService",
    "JobStore",
    "QueueSaturatedError",
    "RetryPolicy",
    "SchedulerStats",
    "ServiceClient",
    "ServiceHTTPServer",
    "WorkerPool",
    "analytic_sweep_payload",
    "evaluate_analytic_sweeps",
    "is_transient",
    "job_key",
    "normalize_job_params",
    "policy_for",
    "serve",
    "transient_reason",
]

"""The CMU Warp machine case study (Section 5).

The paper closes by observing that the Warp machine -- a one-dimensional
systolic array of programmable cells, each delivering 10 million 32-bit
floating-point operations per second, transferring 20 million words per
second to its neighbours, and equipped with up to 64K 32-bit words of local
memory -- reflects the paper's results: a relatively large I/O bandwidth and
a relatively large per-cell memory.

This module encodes those published parameters and provides the analysis the
paper implies:

* is a single Warp cell balanced (or compute-bound) for the matmul-class
  kernels at realistic problem sizes?
* how much per-cell memory does a ``p``-cell Warp-like linear array need for
  matmul-class computations, and does the actual 64K-word memory cover it?
* how does the required memory react to hypothetical increases of the cell's
  compute bandwidth (the ``alpha`` sweep of Section 3)?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrays.aggregate import linear_array
from repro.arrays.sizing import ArraySizingResult, size_array_memory
from repro.core.intensity import IntensityFunction, PowerLawIntensity
from repro.core.model import BoundKind, ComputationCost, ProcessingElement, assess_balance
from repro.core.rebalance import balanced_memory_for_pe, rebalance_memory
from repro.exceptions import ConfigurationError

__all__ = [
    "WARP_CELL",
    "WarpCaseStudy",
    "warp_cell",
    "warp_array_sizing",
]

#: Published per-cell parameters of the CMU Warp machine (Arnould et al. 1985).
WARP_CELL = ProcessingElement(
    compute_bandwidth=10e6,   # 10 MFLOPS
    io_bandwidth=20e6,        # 20 Mwords/s to and from neighbouring cells
    memory_words=64 * 1024,   # up to 64K 32-bit words of local memory
    name="Warp cell",
)


def warp_cell(
    *,
    compute_bandwidth: float = WARP_CELL.compute_bandwidth,
    io_bandwidth: float = WARP_CELL.io_bandwidth,
    memory_words: int = WARP_CELL.memory_words,
) -> ProcessingElement:
    """A Warp-like cell, with the published values as defaults."""
    return ProcessingElement(
        compute_bandwidth=compute_bandwidth,
        io_bandwidth=io_bandwidth,
        memory_words=memory_words,
        name="Warp cell",
    )


@dataclass(frozen=True)
class WarpCaseStudy:
    """Results of analysing the Warp cell for one computation."""

    cell: ProcessingElement
    intensity: IntensityFunction
    memory_required_for_balance: float
    memory_headroom: float
    bound_at_full_memory: BoundKind

    @property
    def balanced_or_compute_bound(self) -> bool:
        """The paper's qualitative conclusion: the cell is not I/O starved."""
        return self.bound_at_full_memory is not BoundKind.IO_BOUND

    def describe(self) -> str:
        return (
            f"{self.cell.name}: C/IO={self.cell.compute_io_ratio:g}; balance needs "
            f"M >= {self.memory_required_for_balance:g} words, available "
            f"{self.cell.memory_words} words (headroom {self.memory_headroom:g}x); "
            f"at full memory the cell is {self.bound_at_full_memory.value}"
        )


def analyse_cell(
    cell: ProcessingElement = WARP_CELL,
    intensity: IntensityFunction | None = None,
    *,
    cost_at_full_memory: ComputationCost | None = None,
) -> WarpCaseStudy:
    """Check whether a Warp-like cell is balanced for a matmul-class computation.

    The default intensity is the matrix-multiplication ``F(M) = sqrt(M)``;
    ``cost_at_full_memory`` (defaults to the analytic intensity at the cell's
    full memory) determines the bound classification.
    """
    intensity = intensity or PowerLawIntensity(exponent=0.5)
    required = balanced_memory_for_pe(cell, intensity)
    if cost_at_full_memory is None:
        achieved_intensity = intensity(cell.memory_words)
        cost_at_full_memory = ComputationCost(
            compute_ops=achieved_intensity, io_words=1.0
        )
    assessment = assess_balance(cell, cost_at_full_memory)
    headroom = cell.memory_words / required if required > 0 else float("inf")
    return WarpCaseStudy(
        cell=cell,
        intensity=intensity,
        memory_required_for_balance=required,
        memory_headroom=headroom,
        bound_at_full_memory=assessment.bound,
    )


def warp_array_sizing(
    lengths: list[int] | tuple[int, ...],
    *,
    cell: ProcessingElement = WARP_CELL,
    intensity: IntensityFunction | None = None,
) -> list[ArraySizingResult]:
    """Per-cell memory a Warp-like linear array needs as the array grows (Section 4.1)."""
    if not lengths:
        raise ConfigurationError("lengths must not be empty")
    intensity = intensity or PowerLawIntensity(exponent=0.5)
    # The reference PE must be balanced for the computation: give it the
    # memory the balance condition demands at the cell's C/IO ratio.
    balanced_memory = max(1, int(round(balanced_memory_for_pe(cell, intensity))))
    reference = cell.with_memory(balanced_memory)
    results = []
    for p in lengths:
        config = linear_array(reference, p, paper_idealization=True)
        results.append(size_array_memory(config, intensity, reference))
    return results


def compute_bandwidth_sweep(
    alphas: list[float] | tuple[float, ...],
    *,
    cell: ProcessingElement = WARP_CELL,
    intensity: IntensityFunction | None = None,
) -> list[tuple[float, float]]:
    """Required memory when the cell's compute bandwidth is scaled by each ``alpha``.

    Returns ``(alpha, memory_words)`` pairs; the starting point is the memory
    that balances the unscaled cell.
    """
    intensity = intensity or PowerLawIntensity(exponent=0.5)
    base_memory = balanced_memory_for_pe(cell, intensity)
    series = []
    for alpha in alphas:
        result = rebalance_memory(intensity, base_memory, alpha, allow_infeasible=True)
        series.append((float(alpha), result.memory_new))
    return series

"""The CMU Warp machine case study (Section 5)."""

from repro.warp.machine import (
    WARP_CELL,
    WarpCaseStudy,
    analyse_cell,
    compute_bandwidth_sweep,
    warp_array_sizing,
    warp_cell,
)

__all__ = [
    "WARP_CELL",
    "WarpCaseStudy",
    "analyse_cell",
    "compute_bandwidth_sweep",
    "warp_array_sizing",
    "warp_cell",
]

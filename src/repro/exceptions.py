"""Exception hierarchy for the balanced-architecture reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A model or simulator was constructed with invalid parameters."""


class RebalanceInfeasibleError(ReproError):
    """Rebalancing is impossible for the requested computation.

    Raised for I/O-bounded computations (Section 3.6 of the paper): once the
    local memory exceeds a constant, enlarging it further cannot reduce the
    I/O requirement, so no finite memory restores balance after ``C/IO`` is
    increased.
    """

    def __init__(self, message: str, *, computation: str | None = None) -> None:
        super().__init__(message)
        self.computation = computation


class MemoryCapacityError(ReproError):
    """A kernel or allocation exceeded the simulated local-memory capacity."""

    def __init__(
        self,
        message: str,
        *,
        requested_words: int | None = None,
        capacity_words: int | None = None,
    ) -> None:
        super().__init__(message)
        self.requested_words = requested_words
        self.capacity_words = capacity_words


class UnknownComputationError(ReproError, KeyError):
    """A computation name was not found in the computation registry."""


class TaskExecutionError(ReproError):
    """A runtime task raised inside a worker.

    Wraps the original exception (available as ``__cause__``) and carries the
    failing task's ``label``, so a pool failure names the task that died
    instead of surfacing a bare traceback from an anonymous worker process.
    """

    def __init__(self, message: str, *, label: str | None = None) -> None:
        super().__init__(message)
        self.label = label


class ServiceError(ReproError):
    """A job-service request failed (bad submission, lost job, HTTP error).

    ``retry_after`` (seconds) is set on backpressure responses (429 when
    the queue is saturated, 503 while draining) so clients know how long to
    hold off before resubmitting.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class QueueSaturatedError(ServiceError):
    """The scheduler's bounded queue is full; the submission was shed.

    Carries HTTP 429 semantics and a ``retry_after`` estimate derived from
    the queue depth and recent job latency.
    """

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message, status=429, retry_after=retry_after)


class PebbleGameError(ReproError):
    """An illegal move or impossible schedule in the red-blue pebble game."""


class SimulationError(ReproError):
    """A machine or array simulation reached an inconsistent state."""


class FittingError(ReproError):
    """A scaling-law fit could not be performed (e.g. too few points)."""

"""Content-addressed on-disk caches for deterministic computations.

Two stores live here:

* :class:`ResultCache` -- kernel execution measurements.  Running an
  instrumented kernel is deterministic: the measured cost, peak residency and
  intensity depend only on the kernel (code and configuration), the problem
  instance and the local-memory size.  The cache exploits this by keying each
  execution on a SHA-256 digest of

  - the kernel's class, configuration and *source code* (so editing a kernel
    automatically invalidates its cached results),
  - a structural fingerprint of the problem instance (array contents
    included),
  - and the memory size.

  Cached entries store the measured numbers only -- not the numerical output
  -- so a cache hit reconstructs a :class:`~repro.kernels.base.KernelExecution`
  with ``output=None``.  Runs that need the output (``verify=True``) bypass
  the cache.

* :class:`TaskCache` -- arbitrary picklable results of
  :class:`~repro.runtime.tasks.Task` executions, keyed by the task's
  content address (callable identity, module source, parameters).  Entries
  hold the complete result object, so a hit is indistinguishable from a
  fresh run.
"""

from __future__ import annotations

import contextlib
import hashlib
import inspect
import json
import os
import pickle
import sys
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.model import ComputationCost
from repro.exceptions import ConfigurationError
from repro.faults.injector import maybe_inject
from repro.kernels.base import Kernel, KernelExecution
from repro.kernels.counters import PhaseRecorder
from repro.obs.metrics import REGISTRY

__all__ = [
    "MISS",
    "ResultCache",
    "TaskCache",
    "CacheStats",
    "execution_key",
    "kernel_code_version",
]

SCHEMA_VERSION = 1
TASK_SCHEMA_VERSION = 1

# Process-wide cache instrumentation, labelled by store ("results"/"tasks").
# The per-instance ``CacheStats`` counters remain the API callers read; the
# metric families aggregate across every instance for ``GET /metrics``.
_METRIC_HITS = REGISTRY.counter(
    "repro_cache_hits_total",
    "Cache lookups served from a readable on-disk entry.",
    labelnames=("cache",),
)
_METRIC_MISSES = REGISTRY.counter(
    "repro_cache_misses_total",
    "Cache lookups that found no (or an unreadable) entry.",
    labelnames=("cache",),
)
_METRIC_STORES = REGISTRY.counter(
    "repro_cache_stores_total",
    "Entries written to the on-disk caches.",
    labelnames=("cache",),
)
_METRIC_STORE_BYTES = REGISTRY.counter(
    "repro_cache_store_bytes_total",
    "Bytes written to the on-disk caches.",
    labelnames=("cache",),
)
_METRIC_STORE_FAILURES = REGISTRY.counter(
    "repro_cache_store_failures_total",
    "Cache entries that could not be written (disk error); the result "
    "stays correct, the key is simply a miss next time.",
    labelnames=("cache",),
)


def _fingerprint(value: Any) -> Any:
    """Reduce a problem value to a canonical, JSON-serialisable structure.

    Numpy arrays are replaced by a digest of their raw bytes so two problems
    with equal array contents produce equal fingerprints, while fingerprints
    stay small no matter how large the arrays are.
    """
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return ["ndarray", value.dtype.str, list(value.shape), digest]
    if isinstance(value, (np.integer, np.floating)):
        return _fingerprint(value.item())
    if isinstance(value, complex):
        return ["complex", value.real, value.imag]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_fingerprint(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _fingerprint(value[key]) for key in sorted(value)}
    attributes = getattr(value, "__dict__", None)
    if attributes:
        # Structured problem objects (e.g. CSRMatrix): fingerprint their
        # attributes.  The default repr embeds a memory address, which would
        # make every run a cache miss.
        return ["object", type(value).__qualname__, _fingerprint(attributes)]
    return ["repr", repr(value)]


def kernel_code_version(kernel: Kernel) -> str:
    """A digest of the kernel's implementation, for cache invalidation.

    Hashes the source of every module that defines the kernel's class or a
    ``Kernel`` base class, plus the shared instrumentation module
    (:mod:`repro.kernels.counters`).  Hashing whole modules rather than
    class bodies means edits to module-level helpers the kernel calls also
    invalidate previously cached measurements; the cost is occasional
    over-invalidation, which is the safe direction.
    """
    return _code_version_for_class(type(kernel))


@lru_cache(maxsize=None)
def _code_version_for_class(kernel_class: type) -> str:
    modules = {"repro.kernels.counters"}
    for klass in kernel_class.__mro__:
        if klass is not object and issubclass(klass, Kernel):
            modules.add(klass.__module__)
    hasher = hashlib.sha256()
    for module_name in sorted(modules):
        module = sys.modules.get(module_name)
        try:
            hasher.update(inspect.getsource(module).encode())
        except (OSError, TypeError):  # source unavailable (e.g. REPL-defined)
            hasher.update(module_name.encode())
    return hasher.hexdigest()[:16]


def execution_key(
    kernel: Kernel, memory_words: int, problem: Mapping[str, Any]
) -> str:
    """Content address of one ``kernel.execute(memory_words, **problem)`` call."""
    payload = {
        "schema": SCHEMA_VERSION,
        "kernel_class": type(kernel).__qualname__,
        "kernel_config": _fingerprint(vars(kernel)),
        "code_version": kernel_code_version(kernel),
        "memory_words": int(memory_words),
        "problem": _fingerprint(dict(problem)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters accumulated over the lifetime of a cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    store_failures: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_failures": self.store_failures,
        }


class ResultCache:
    """Content-addressed store of kernel execution measurements.

    Entries live as one small JSON file each under ``root``, sharded by the
    first byte of the key.  The cache is safe to share between processes:
    writes go through a temporary file followed by an atomic rename, and a
    corrupt or truncated entry is treated as a miss.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def disk_usage_bytes(self) -> int:
        """Total size on disk of every entry (excludes unrelated files)."""
        return _disk_usage(self.root, "*/*.json")

    def key_for(
        self, kernel: Kernel, memory_words: int, problem: Mapping[str, Any]
    ) -> str:
        return execution_key(kernel, memory_words, problem)

    def load(self, key: str) -> KernelExecution | None:
        """Return the cached execution for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
            if entry["schema"] != SCHEMA_VERSION:
                raise ValueError(f"unsupported cache schema {entry['schema']!r}")
            execution = KernelExecution(
                kernel_name=entry["kernel_name"],
                memory_words=int(entry["memory_words"]),
                problem=entry.get("problem_summary", {}),
                output=None,
                cost=ComputationCost(
                    float(entry["compute_ops"]), float(entry["io_words"])
                ),
                peak_memory_words=int(entry["peak_memory_words"]),
                phases=PhaseRecorder(),
                from_cache=True,
            )
        except FileNotFoundError:
            self.stats.misses += 1
            _METRIC_MISSES.labels(cache="results").inc()
            return None
        except (KeyError, ValueError, TypeError, OSError):
            # Corrupt entry: drop it and treat the lookup as a miss.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            _METRIC_MISSES.labels(cache="results").inc()
            return None
        self.stats.hits += 1
        _METRIC_HITS.labels(cache="results").inc()
        return execution

    def store(self, key: str, execution: KernelExecution) -> None:
        """Persist one execution's measurements under ``key``."""
        if execution.output is None and not execution.from_cache:
            raise ConfigurationError(
                "refusing to cache an execution without an output; it was not "
                "produced by a real kernel run"
            )
        entry = {
            "schema": SCHEMA_VERSION,
            "kernel_name": execution.kernel_name,
            "memory_words": int(execution.memory_words),
            "problem_summary": _problem_summary(execution.problem),
            "compute_ops": float(execution.cost.compute_ops),
            "io_words": float(execution.cost.io_words),
            "peak_memory_words": int(execution.peak_memory_words),
        }
        data = json.dumps(entry, sort_keys=True).encode()
        try:
            _atomic_write(self._path(key), data)
        except OSError:
            # Best-effort durability: the measurement in hand is correct,
            # so a full disk must not fail the run -- the key is simply a
            # miss (and a re-measure) next time.
            self.stats.store_failures += 1
            _METRIC_STORE_FAILURES.labels(cache="results").inc()
            return
        self.stats.stores += 1
        _METRIC_STORES.labels(cache="results").inc()
        _METRIC_STORE_BYTES.labels(cache="results").inc(len(data))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


def _disk_usage(root: Path, pattern: str) -> int:
    total = 0
    for path in root.glob(pattern):
        try:
            total += path.stat().st_size
        except OSError:  # entry vanished between glob and stat (racing clear)
            continue
    return total


def _atomic_write(path: Path, data: bytes) -> None:
    """Publish ``data`` at ``path`` atomically (unique temp file + rename).

    Concurrent processes storing the same key each publish a complete entry,
    last writer wins; readers never observe a truncated file.

    The chaos suite's ``cache-write-failure`` fault injects an ``OSError``
    here, covering every consumer of this helper (both caches and the
    result store's segment writes) with one injection point.
    """
    maybe_inject("cache-write-failure", site=str(path))
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f"{path.stem[:8]}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


class _Miss:
    """Sentinel type distinguishing a cache miss from a cached ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<cache miss>"


#: Returned by :meth:`TaskCache.load` when the key has no usable entry.
MISS = _Miss()


class TaskCache:
    """Content-addressed store of arbitrary picklable task results.

    Entries live as one pickle file each under ``root``, sharded by the first
    byte of the key, written atomically; a corrupt or truncated entry is
    treated as a miss and removed.  Unlike :class:`ResultCache`, entries hold
    the complete result object, so replayed results are bitwise identical to
    fresh ones (pickling round-trips floats and numpy arrays exactly).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def disk_usage_bytes(self) -> int:
        """Total size on disk of every entry (excludes unrelated files)."""
        return _disk_usage(self.root, "*/*.pkl")

    def load(self, key: str) -> Any:
        """Return the cached value for ``key``, or :data:`MISS`."""
        path = self._path(key)
        try:
            entry = pickle.loads(path.read_bytes())
            if entry["schema"] != TASK_SCHEMA_VERSION:
                raise ValueError(f"unsupported task schema {entry['schema']!r}")
            value = entry["value"]
        except FileNotFoundError:
            self.stats.misses += 1
            _METRIC_MISSES.labels(cache="tasks").inc()
            return MISS
        except Exception:
            # Corrupt/unreadable entry (bad pickle, missing key, stale class
            # definition, ...): drop it and treat the lookup as a miss.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            _METRIC_MISSES.labels(cache="tasks").inc()
            return MISS
        self.stats.hits += 1
        _METRIC_HITS.labels(cache="tasks").inc()
        return value

    def store(self, key: str, value: Any, *, label: str | None = None) -> None:
        """Persist one task's result under ``key``."""
        entry = {"schema": TASK_SCHEMA_VERSION, "label": label, "value": value}
        data = pickle.dumps(entry)
        try:
            _atomic_write(self._path(key), data)
        except OSError:
            # Best-effort, as in ResultCache.store: never fail the task
            # whose result was already computed.
            self.stats.store_failures += 1
            _METRIC_STORE_FAILURES.labels(cache="tasks").inc()
            return
        self.stats.stores += 1
        _METRIC_STORES.labels(cache="tasks").inc()
        _METRIC_STORE_BYTES.labels(cache="tasks").inc(len(data))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


def _problem_summary(problem: Mapping[str, Any]) -> dict[str, Any]:
    """A human-readable sketch of the problem, stored alongside the numbers."""
    summary: dict[str, Any] = {}
    for key, value in problem.items():
        if isinstance(value, np.ndarray):
            summary[key] = f"ndarray{tuple(value.shape)}:{value.dtype}"
        elif isinstance(value, (bool, int, float, str)) or value is None:
            summary[key] = value
        else:
            summary[key] = repr(value)
    return summary

"""Declarative scenario suites: named batches of work for the runtime.

A :class:`Scenario` names one kernel, one problem scale and one memory grid
(plus optional rebalancing alphas and a fleet of PE configurations to assess
balance against).  An :class:`ExperimentScenario` names one experiment driver
(Figure 2, the Section 4 arrays, the pebble game, the Warp study) and its
parameters, lowered onto generic :class:`~repro.runtime.tasks.Task` objects.
A :class:`ScenarioSuite` is a named collection of both; :func:`run_suite`
lowers the sweeps onto a :class:`~repro.runtime.engine.SweepRunner` as one
flat batch of points and the experiments onto a
:class:`~repro.runtime.tasks.TaskRunner` as one flat batch of tasks, so
every execution in the suite shares the worker pool and the result caches.

The named suites double as the CI benchmark surface: ``repro suite quick``
covers every experiment of the reproduction and emits the machine-readable
JSON that the benchmark smoke job uploads as a build artifact
(``BENCH_suite_<name>.json``).
"""

from __future__ import annotations

import csv
import json
import time
import uuid
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.analysis.fitting import fit_power_law, select_intensity_model
from repro.analysis.sweep import MemorySweepResult, measured_rebalance_curve
from repro.core.intensity import PowerLawIntensity
from repro.core.model import ProcessingElement, assess_balance
from repro.exceptions import ConfigurationError
from repro.kernels import (
    BlockedFFT,
    BlockedLUTriangularization,
    BlockedMatrixMultiply,
    ExternalMergeSort,
    GridRelaxation,
    StreamingMatrixVectorProduct,
    StreamingSparseMatrixVector,
    StreamingTriangularSolve,
)
from repro.kernels.base import Kernel
from repro.obs import spans as obs_spans
from repro.runtime.cache import TaskCache, execution_key
from repro.runtime.engine import SweepPlan, SweepRunner
from repro.runtime.tasks import Task, TaskRunner

__all__ = [
    "PEConfig",
    "Scenario",
    "ExperimentScenario",
    "ScenarioSuite",
    "ScenarioResult",
    "ExperimentScenarioResult",
    "SuiteResult",
    "kernel_factories",
    "build_kernel",
    "experiment_kinds",
    "suite_names",
    "get_suite",
    "run_suite",
    "store_for",
    "task_runner_for",
]

RESULT_SCHEMA = "repro-suite-result/v3"
EXPERIMENT_PAYLOAD_SCHEMA = "repro-service-experiment/v1"


KERNEL_FACTORIES: dict[str, Callable[[], Kernel]] = {
    "matmul": BlockedMatrixMultiply,
    "triangularization": BlockedLUTriangularization,
    "grid1d": lambda: GridRelaxation(dimension=1),
    "grid2d": lambda: GridRelaxation(dimension=2),
    "grid3d": lambda: GridRelaxation(dimension=3),
    "grid4d": lambda: GridRelaxation(dimension=4),
    "fft": BlockedFFT,
    "sorting": ExternalMergeSort,
    "matvec": StreamingMatrixVectorProduct,
    "triangular_solve": StreamingTriangularSolve,
    "sparse_matvec": StreamingSparseMatrixVector,
}


def kernel_factories() -> dict[str, Callable[[], Kernel]]:
    """Name -> factory for every kernel a scenario can reference."""
    return dict(KERNEL_FACTORIES)


def build_kernel(name: str) -> Kernel:
    """Instantiate a scenario kernel by name."""
    try:
        factory = KERNEL_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(KERNEL_FACTORIES))
        raise ConfigurationError(
            f"unknown scenario kernel {name!r}; known kernels: {known}"
        ) from None
    return factory()


@dataclass(frozen=True)
class PEConfig:
    """One processing element of a scenario's fleet (memory comes per point)."""

    name: str
    compute_bandwidth: float
    io_bandwidth: float

    def processing_element(self, memory_words: int) -> ProcessingElement:
        return ProcessingElement(
            compute_bandwidth=self.compute_bandwidth,
            io_bandwidth=self.io_bandwidth,
            memory_words=memory_words,
            name=self.name,
        )


@dataclass(frozen=True)
class Scenario:
    """One kernel x one problem scale x one memory grid (+ optional extras)."""

    name: str
    kernel: str
    memory_sizes: tuple[int, ...]
    scale: int
    alphas: tuple[float, ...] = ()
    pes: tuple[PEConfig, ...] = ()

    def plan(self) -> SweepPlan:
        return SweepPlan(
            kernel=build_kernel(self.kernel),
            memory_sizes=self.memory_sizes,
            scale=self.scale,
            name=self.name,
        )


# ---------------------------------------------------------------------------
# Experiment scenarios: the non-sweep experiments as declarative task batches.
# ---------------------------------------------------------------------------

#: The experiment kinds a scenario can reference.
EXPERIMENT_KINDS = (
    "figure2",
    "linear-array",
    "mesh-array",
    "systolic",
    "pebble",
    "warp",
)


def experiment_kinds() -> tuple[str, ...]:
    """Every experiment kind an :class:`ExperimentScenario` can reference."""
    return EXPERIMENT_KINDS


@lru_cache(maxsize=1)
def _experiment_task_builders() -> dict[str, Callable[..., list[Task]]]:
    """Kind -> task-list builder, imported lazily.

    The experiment modules import :mod:`repro.runtime.tasks`, which loads
    this package; importing them at module scope would close that cycle
    before their task builders exist.
    """
    from repro.experiments.arrays_section4 import (
        linear_array_task,
        mesh_array_task,
        systolic_task,
    )
    from repro.experiments.fft_figure2 import figure2_task
    from repro.experiments.pebble_bounds import pebble_point_tasks
    from repro.experiments.warp_study import warp_task

    return {
        "figure2": lambda **params: [figure2_task(**params)],
        "linear-array": lambda **params: [linear_array_task(**params)],
        "mesh-array": lambda **params: [mesh_array_task(**params)],
        "systolic": lambda **params: [systolic_task(**params)],
        "pebble": lambda **params: pebble_point_tasks(**params),
        "warp": lambda **params: [warp_task(**params)],
    }


def _summarize_figure2(results: Sequence[Any]) -> dict[str, object]:
    (result,) = results
    return {
        "pass_count": result.pass_count,
        "blocks_per_pass": result.blocks_per_pass,
        "max_output_error": result.max_output_error,
        "correct": result.correct,
    }


def _summarize_sizing(results: Sequence[Any]) -> dict[str, object]:
    (result,) = results
    return {
        "kind": result.kind,
        "computation": result.computation_label,
        "growth_exponent": result.per_cell_growth_exponent,
        "per_cell_memory_words": list(result.per_cell_memories),
    }


def _summarize_systolic(results: Sequence[Any]) -> dict[str, object]:
    (result,) = results
    return {
        "engine": result.engine,
        "matmul_order": result.matmul_order,
        "matvec_length": result.matvec_length,
        "qr_order": result.qr_order,
        "matmul_correct": result.matmul_correct,
        "matvec_correct": result.matvec_correct,
        "qr_correct": result.qr_correct,
        "matmul_utilization": result.matmul_utilization,
        "matvec_utilization": result.matvec_utilization,
        "qr_utilization": result.qr_utilization,
        "matmul_max_abs_error": result.matmul_max_abs_error,
        "matvec_max_abs_error": result.matvec_max_abs_error,
        "qr_max_abs_error": result.qr_max_abs_error,
    }


def _summarize_pebble(points: Sequence[Any]) -> dict[str, object]:
    return {
        "all_above_lower_bound": all(
            point.measured_io >= point.lower_bound for point in points
        ),
        "points": [
            {
                "dag": point.dag_name,
                "fast_memory_words": point.fast_memory_words,
                "measured_io": point.measured_io,
                "lower_bound": point.lower_bound,
                "ratio": point.ratio,
            }
            for point in points
        ],
    }


def _summarize_warp(results: Sequence[Any]) -> dict[str, object]:
    (result,) = results
    try:
        production_memory = result.production_array_per_cell_memory
    except LookupError:
        production_memory = None
    return {
        "cell_not_io_starved": result.cell_not_io_starved,
        "production_array_per_cell_memory": production_memory,
        "memory_covers_production_array": (
            result.memory_covers_production_array
            if production_memory is not None
            else None
        ),
    }


_EXPERIMENT_SUMMARIZERS: dict[str, Callable[[Sequence[Any]], dict[str, object]]] = {
    "figure2": _summarize_figure2,
    "linear-array": _summarize_sizing,
    "mesh-array": _summarize_sizing,
    "systolic": _summarize_systolic,
    "pebble": _summarize_pebble,
    "warp": _summarize_warp,
}


@dataclass(frozen=True)
class ExperimentScenario:
    """One experiment driver at one parameterisation, as a task batch."""

    name: str
    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENT_KINDS:
            known = ", ".join(EXPERIMENT_KINDS)
            raise ConfigurationError(
                f"unknown experiment kind {self.experiment!r}; known kinds: {known}"
            )
        object.__setattr__(self, "params", dict(self.params))

    def tasks(self) -> list[Task]:
        """Lower this scenario onto runtime tasks (one or many)."""
        return _experiment_task_builders()[self.experiment](**self.params)

    def summarize(self, results: Sequence[Any]) -> dict[str, object]:
        """Reduce the task results to a JSON-serialisable headline summary."""
        return _EXPERIMENT_SUMMARIZERS[self.experiment](results)

    def as_payload(
        self, results: Sequence[Any], task_keys: Sequence[str] = ()
    ) -> dict[str, object]:
        """The ingestible experiment-result document for one execution.

        The same shape the job service returns for experiment jobs, so CLI
        drivers and service workers record identical history.
        """
        return {
            "schema": EXPERIMENT_PAYLOAD_SCHEMA,
            "experiment": self.experiment,
            "scenario": self.name,
            "tasks": len(results),
            "task_keys": list(task_keys),
            "summary": self.summarize(results),
        }


@dataclass(frozen=True)
class ScenarioSuite:
    """A named, ordered collection of sweep and experiment scenarios."""

    name: str
    description: str
    scenarios: tuple[Scenario, ...]
    experiments: tuple[ExperimentScenario, ...] = ()

    def __post_init__(self) -> None:
        names = [scenario.name for scenario in self.scenarios]
        names += [experiment.name for experiment in self.experiments]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ConfigurationError(
                f"suite {self.name!r} has duplicate scenario names: "
                + ", ".join(duplicates)
            )


def scenario_grid(
    prefix: str,
    kernels: Sequence[str],
    memory_sizes: Sequence[int],
    scales: dict[str, int],
    *,
    alphas: Sequence[float] = (),
    pes: Sequence[PEConfig] = (),
) -> tuple[Scenario, ...]:
    """Cross-product helper: one scenario per kernel over a shared grid."""
    return tuple(
        Scenario(
            name=f"{prefix}-{kernel}",
            kernel=kernel,
            memory_sizes=tuple(memory_sizes),
            scale=scales[kernel],
            alphas=tuple(alphas),
            pes=tuple(pes),
        )
        for kernel in kernels
    )


# ---------------------------------------------------------------------------
# The named suites.
# ---------------------------------------------------------------------------

_DEFAULT_ALPHAS = (1.5, 2.0, 3.0)

#: A small fleet spanning the balance spectrum: the baseline PE, one with a
#: 4x compute upgrade (the paper's rebalancing thought experiment), and one
#: with the I/O bandwidth doubled instead.
_FLEET = (
    PEConfig("baseline", compute_bandwidth=8e6, io_bandwidth=1e6),
    PEConfig("compute-4x", compute_bandwidth=32e6, io_bandwidth=1e6),
    PEConfig("io-2x", compute_bandwidth=8e6, io_bandwidth=2e6),
)


def _quick_suite() -> ScenarioSuite:
    return ScenarioSuite(
        name="quick",
        description=(
            "Small instances of every paper kernel and every experiment "
            "driver; the CI benchmark smoke suite (seconds, not minutes)."
        ),
        scenarios=(
            Scenario("quick-matmul", "matmul", (12, 27, 48, 75, 108), 24, _DEFAULT_ALPHAS),
            Scenario(
                "quick-triangularization",
                "triangularization",
                (12, 27, 48, 75, 108),
                24,
                _DEFAULT_ALPHAS,
            ),
            Scenario("quick-grid2d", "grid2d", (36, 100, 256, 576), 7, _DEFAULT_ALPHAS),
            Scenario("quick-fft", "fft", (4, 8, 64, 2048), 10, _DEFAULT_ALPHAS),
            Scenario("quick-sorting", "sorting", (8, 32, 128, 512), 16384, _DEFAULT_ALPHAS),
            Scenario("quick-matvec", "matvec", (8, 16, 32, 64, 128), 32),
            Scenario(
                "quick-triangular-solve", "triangular_solve", (8, 16, 32, 64, 128), 32
            ),
            Scenario("quick-sparse-matvec", "sparse_matvec", (8, 32, 128, 512), 48),
        ),
        experiments=(
            ExperimentScenario("quick-figure2", "figure2"),
            ExperimentScenario(
                "quick-linear-array", "linear-array", {"lengths": (2, 4, 8, 16, 32)}
            ),
            ExperimentScenario(
                "quick-mesh-array", "mesh-array", {"sides": (2, 4, 8, 16)}
            ),
            # The small instance runs on the validating reference engine so
            # the scalar specification stays exercised in CI; the large-order
            # scenarios below are what the vectorized wavefront engine buys.
            ExperimentScenario(
                "quick-systolic",
                "systolic",
                {"order": 4, "batches": 8, "engine": "reference"},
            ),
            ExperimentScenario(
                "quick-systolic-mesh32",
                "systolic",
                {"order": 32, "batches": 4, "engine": "fast"},
            ),
            ExperimentScenario(
                "quick-systolic-mesh64",
                "systolic",
                {"order": 64, "batches": 2, "engine": "fast"},
            ),
            ExperimentScenario(
                "quick-systolic-stream256",
                "systolic",
                {
                    "order": 8,
                    "batches": 16,
                    "engine": "fast",
                    "matvec_length": 256,
                    "qr_order": 16,
                },
            ),
            ExperimentScenario(
                "quick-pebble",
                "pebble",
                {
                    "matmul_order": 4,
                    "fft_points": 32,
                    "matmul_memories": (4, 8, 16),
                    "fft_memories": (4, 8, 16),
                },
            ),
            ExperimentScenario("quick-warp", "warp"),
        ),
    )


def _full_suite() -> ScenarioSuite:
    return ScenarioSuite(
        name="full",
        description=(
            "The benchmark-harness problem sizes for every paper kernel; the "
            "grids behind experiments E1-E8."
        ),
        scenarios=(
            Scenario(
                "full-matmul", "matmul", (12, 27, 48, 108, 192, 300, 432), 48, _DEFAULT_ALPHAS
            ),
            Scenario(
                "full-triangularization",
                "triangularization",
                (12, 27, 48, 108, 192, 300, 432),
                48,
                _DEFAULT_ALPHAS,
            ),
            Scenario(
                "full-grid2d", "grid2d", (36, 100, 256, 576, 1296, 2704), 7, _DEFAULT_ALPHAS
            ),
            Scenario(
                "full-grid3d", "grid3d", (64, 216, 512, 1728, 4096), 7, _DEFAULT_ALPHAS
            ),
            Scenario("full-fft", "fft", (4, 8, 16, 32, 128, 8192), 12, _DEFAULT_ALPHAS),
            Scenario("full-sorting", "sorting", (8, 32, 128, 512), 16384, _DEFAULT_ALPHAS),
            Scenario("full-matvec", "matvec", (8, 16, 32, 64, 128, 256), 64),
            Scenario(
                "full-triangular-solve",
                "triangular_solve",
                (8, 16, 32, 64, 128, 256),
                64,
            ),
            Scenario("full-sparse-matvec", "sparse_matvec", (8, 32, 128, 512, 2048), 64),
        ),
        experiments=(
            ExperimentScenario(
                "full-figure2", "figure2", {"n_points": 64, "block_points": 8}
            ),
            ExperimentScenario("full-linear-array", "linear-array"),
            ExperimentScenario("full-mesh-array", "mesh-array"),
            ExperimentScenario(
                "full-mesh-array-grid4d",
                "mesh-array",
                {
                    "sides": (2, 4, 8, 16),
                    "intensity": PowerLawIntensity(exponent=0.25),
                    "computation_label": "4-d grid relaxation (law alpha^4)",
                },
            ),
            ExperimentScenario(
                "full-systolic",
                "systolic",
                {"order": 8, "batches": 24, "engine": "reference"},
            ),
            # Large-order systolic scenarios (the wavefront engine's payoff):
            # meshes up to order 256, matvec streams up to 512 points, and
            # triangular QR arrays up to 128 columns (the banded
            # anti-diagonal engine is what makes these affordable).
            ExperimentScenario(
                "full-systolic-mesh64",
                "systolic",
                {"order": 64, "batches": 4, "engine": "fast"},
            ),
            ExperimentScenario(
                "full-systolic-mesh128",
                "systolic",
                {"order": 128, "batches": 2, "engine": "fast"},
            ),
            ExperimentScenario(
                "full-systolic-mesh256",
                "systolic",
                {"order": 256, "batches": 2, "engine": "fast"},
            ),
            ExperimentScenario(
                "full-systolic-stream256",
                "systolic",
                {
                    "order": 16,
                    "batches": 16,
                    "engine": "fast",
                    "matvec_length": 256,
                    "qr_order": 64,
                    "qr_rows": 256,
                },
            ),
            ExperimentScenario(
                "full-systolic-stream512",
                "systolic",
                {
                    "order": 16,
                    "batches": 8,
                    "engine": "fast",
                    "matvec_length": 512,
                    "qr_order": 128,
                    "qr_rows": 256,
                },
            ),
            ExperimentScenario("full-pebble", "pebble"),
            # The large-DAG scenarios: order-10 matmul (1200 nodes, a 1000-step
            # blocked schedule per memory size) and a 256-point FFT (2304
            # nodes); the pebble game's trusted fast engine is what keeps
            # these in benchmark-suite territory.
            ExperimentScenario(
                "full-pebble-large",
                "pebble",
                {
                    "matmul_order": 10,
                    "fft_points": 256,
                    "matmul_memories": (8, 16, 32, 64),
                    "fft_memories": (8, 16, 32, 64),
                },
            ),
            ExperimentScenario("full-warp", "warp"),
        ),
    )


def _fleet_suite() -> ScenarioSuite:
    scales = {"matmul": 24, "fft": 10, "grid2d": 7, "matvec": 32}
    return ScenarioSuite(
        name="fleet",
        description=(
            "One computation of each class assessed against a fleet of PE "
            "configurations (baseline, compute-upgraded, I/O-upgraded)."
        ),
        scenarios=scenario_grid(
            "fleet",
            ("matmul", "grid2d", "fft", "matvec"),
            (16, 64, 256),
            scales,
            alphas=_DEFAULT_ALPHAS,
            pes=_FLEET,
        ),
        experiments=(
            # The hardware-facing experiments: cycle-level systolic designs
            # and the Warp machine sized across a wider range of array
            # lengths than the default study.
            ExperimentScenario(
                "fleet-systolic", "systolic", {"order": 6, "batches": 12}
            ),
            ExperimentScenario(
                "fleet-warp",
                "warp",
                {"array_lengths": (2, 4, 8, 10, 16, 32, 64, 128)},
            ),
        ),
    )


def _mixed_suite() -> ScenarioSuite:
    scales = {
        "matmul": 24,
        "fft": 10,
        "sorting": 16384,
        "matvec": 32,
        "triangular_solve": 32,
    }
    return ScenarioSuite(
        name="mixed",
        description=(
            "A mixed workload: compute-bound, exponential-law and I/O-bounded "
            "kernels interleaved over one shared memory grid."
        ),
        scenarios=scenario_grid(
            "mixed",
            ("matmul", "fft", "sorting", "matvec", "triangular_solve"),
            (8, 32, 128),
            scales,
        ),
        experiments=(
            ExperimentScenario(
                "mixed-figure2", "figure2", {"n_points": 32, "block_points": 4}
            ),
            ExperimentScenario(
                "mixed-pebble",
                "pebble",
                {
                    "matmul_order": 5,
                    "fft_points": 64,
                    "matmul_memories": (4, 16),
                    "fft_memories": (4, 16),
                },
            ),
        ),
    )


_SUITES: dict[str, Callable[[], ScenarioSuite]] = {
    "quick": _quick_suite,
    "full": _full_suite,
    "fleet": _fleet_suite,
    "mixed": _mixed_suite,
}


def suite_names() -> list[str]:
    """Names of every registered scenario suite."""
    return list(_SUITES)


def get_suite(name: str) -> ScenarioSuite:
    """Look up a named suite."""
    try:
        return _SUITES[name]()
    except KeyError:
        known = ", ".join(sorted(_SUITES))
        raise ConfigurationError(
            f"unknown scenario suite {name!r}; known suites: {known}"
        ) from None


# ---------------------------------------------------------------------------
# Running a suite and serialising the result.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's measurements plus the derived analysis."""

    scenario: Scenario
    sweep: MemorySweepResult

    def rows(self) -> list[dict[str, float]]:
        return self.sweep.rows()

    def fit(self) -> dict[str, object]:
        sizes = self.sweep.memory_sizes
        intensities = self.sweep.intensities
        return {
            "power_law_exponent": fit_power_law(sizes, intensities).exponent,
            "best_model": select_intensity_model(sizes, intensities),
            "computation_class": self.sweep.classification().computation_class.value,
        }

    def rebalance_rows(self) -> list[dict[str, object]]:
        if not self.scenario.alphas:
            return []
        memory_old = float(self.sweep.memory_sizes[0])
        curve = measured_rebalance_curve(self.sweep, memory_old, self.scenario.alphas)
        return [
            {
                "alpha": result.alpha,
                "memory_new": result.memory_new,
                "growth_factor": result.growth_factor,
                "feasible": result.feasible,
            }
            for result in curve
        ]

    def balance_rows(self) -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        for pe_config in self.scenario.pes:
            for memory, execution in zip(
                self.sweep.memory_sizes, self.sweep.executions
            ):
                pe = pe_config.processing_element(memory)
                assessment = assess_balance(pe, execution.cost)
                rows.append(
                    {
                        "pe": pe_config.name,
                        "memory_words": memory,
                        "bound": assessment.bound.value,
                        "compute_time": assessment.compute_time,
                        "io_time": assessment.io_time,
                        "imbalance": assessment.imbalance,
                    }
                )
        return rows

    def point_keys(self) -> list[str]:
        """The content address of each sweep point, in memory-grid order.

        These are exactly the keys :class:`~repro.runtime.engine.SweepRunner`
        used for the result cache, recomputed from the deterministic plan --
        so store records join against cache entries without the runner
        having to thread keys through.
        """
        plan = self.scenario.plan()
        return [
            execution_key(plan.kernel, memory, plan.problem_at(memory))
            for memory in self.sweep.memory_sizes
        ]

    def as_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario.name,
            "kernel": self.scenario.kernel,
            "scale": self.scenario.scale,
            "memory_sizes": list(self.sweep.memory_sizes),
            "point_keys": self.point_keys(),
            "rows": self.rows(),
            "fit": self.fit(),
            "rebalance": self.rebalance_rows(),
            "balance": self.balance_rows(),
        }


@dataclass(frozen=True)
class ExperimentScenarioResult:
    """One experiment scenario's task results plus the derived summary."""

    scenario: ExperimentScenario
    results: tuple[Any, ...]
    task_keys: tuple[str, ...] = ()

    def summary(self) -> dict[str, object]:
        return self.scenario.summarize(self.results)

    def headline(self) -> str:
        """One compact human-readable line for tables and logs."""
        summary = self.summary()
        kind = self.scenario.experiment
        if kind == "figure2":
            return (
                f"{summary['pass_count']} passes x {summary['blocks_per_pass']} "
                f"blocks, {'correct' if summary['correct'] else 'INCORRECT'}"
            )
        if kind in ("linear-array", "mesh-array"):
            return f"per-cell growth exponent {summary['growth_exponent']:.2f}"
        if kind == "systolic":
            correct = all(
                summary[key] for key in ("matmul_correct", "matvec_correct", "qr_correct")
            )
            return (
                f"{summary['engine']} engine, mesh {summary['matmul_order']}, "
                f"{'correct' if correct else 'INCORRECT'}, utilization "
                f"{summary['matmul_utilization']:.2f}/"
                f"{summary['matvec_utilization']:.2f}/{summary['qr_utilization']:.2f}"
            )
        if kind == "pebble":
            points = summary["points"]
            above = "all above bound" if summary["all_above_lower_bound"] else "BELOW BOUND"
            return f"{len(points)} points, {above}"
        if kind == "warp":
            starved = "not I/O starved" if summary["cell_not_io_starved"] else "I/O STARVED"
            return f"cell {starved}"
        return f"{len(self.results)} tasks"  # pragma: no cover - exhaustive above

    def as_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario.name,
            "experiment": self.scenario.experiment,
            "tasks": len(self.results),
            "task_keys": list(self.task_keys),
            "summary": self.summary(),
        }


@dataclass(frozen=True)
class SuiteResult:
    """Everything one suite run produced, ready for JSON/CSV emission."""

    suite: ScenarioSuite
    results: tuple[ScenarioResult, ...]
    elapsed_seconds: float
    runtime: dict[str, object] = field(default_factory=dict)
    experiments: tuple[ExperimentScenarioResult, ...] = ()
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])

    def scenario(self, name: str) -> ScenarioResult:
        for result in self.results:
            if result.scenario.name == name:
                return result
        known = ", ".join(r.scenario.name for r in self.results)
        raise ConfigurationError(
            f"no scenario {name!r} in suite {self.suite.name!r}; ran: {known}"
        )

    def experiment(self, name: str) -> ExperimentScenarioResult:
        for result in self.experiments:
            if result.scenario.name == name:
                return result
        known = ", ".join(r.scenario.name for r in self.experiments)
        raise ConfigurationError(
            f"no experiment {name!r} in suite {self.suite.name!r}; ran: {known}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "schema": RESULT_SCHEMA,
            "suite": self.suite.name,
            "run_id": self.run_id,
            "description": self.suite.description,
            "elapsed_seconds": self.elapsed_seconds,
            "runtime": dict(self.runtime),
            "scenarios": [result.as_dict() for result in self.results],
            "experiments": [result.as_dict() for result in self.experiments],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    def csv_rows(self) -> Iterable[dict[str, object]]:
        for result in self.results:
            for row in result.rows():
                yield {
                    "suite": self.suite.name,
                    "scenario": result.scenario.name,
                    "kernel": result.scenario.kernel,
                    **row,
                }

    def write_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = list(self.csv_rows())
        if not rows:
            raise ConfigurationError(
                f"suite {self.suite.name!r} produced no rows to write"
            )
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        return path


def task_runner_for(runner: SweepRunner) -> TaskRunner:
    """A :class:`TaskRunner` matching a sweep runner's pool and cache setup.

    The experiment-task cache lives under a ``tasks/`` subdirectory of the
    sweep result cache, so one ``--cache-dir`` (or ``REPRO_CACHE_DIR``)
    governs both stores.
    """
    cache = None
    if runner.cache is not None:
        cache = TaskCache(runner.cache.root / "tasks")
    return TaskRunner(
        parallel=runner.parallel, max_workers=runner.max_workers, cache=cache
    )


def store_for(runner: SweepRunner) -> Any | None:
    """The :class:`~repro.store.core.ResultStore` matching a runner's cache.

    The store lives under a ``store/`` subdirectory of the sweep result
    cache, so one ``--cache-dir`` (or ``REPRO_CACHE_DIR``) governs caches
    and recorded history alike.  Returns ``None`` when the runner is
    uncached -- no cache root, no history.
    """
    if runner.cache is None:
        return None
    # Imported lazily: repro.store imports this module at load time.
    from repro.store.core import ResultStore

    return ResultStore(runner.cache.root / "store")


def run_suite(
    suite: ScenarioSuite | str,
    runner: SweepRunner | None = None,
    task_runner: TaskRunner | None = None,
    *,
    record: bool = True,
) -> SuiteResult:
    """Execute a suite: sweeps as one flat point batch, experiments as tasks.

    ``task_runner`` defaults to one mirroring ``runner``'s parallelism and
    cache location (:func:`task_runner_for`), so serial/parallel and
    cached/uncached behave consistently across both halves of the suite.

    When the runner is cached and ``record`` is true, the finished result is
    ingested into the result store under the same cache root, making every
    suite run queryable history (``repro report``).  Re-ingesting the
    exported JSON later is a content-addressed no-op.
    """
    if isinstance(suite, str):
        suite = get_suite(suite)
    runner = runner or SweepRunner()
    if task_runner is None:
        task_runner = task_runner_for(runner)
    plans = [scenario.plan() for scenario in suite.scenarios]
    experiment_tasks = [scenario.tasks() for scenario in suite.experiments]

    started = time.perf_counter()
    with obs_spans.span(
        "suite.run",
        kind="suite",
        attributes={
            "suite": suite.name,
            "scenarios": len(plans),
            "experiments": len(experiment_tasks),
        },
    ):
        sweeps = runner.run_plans(plans)
        flat_results = task_runner.run(
            [task for tasks in experiment_tasks for task in tasks]
        )
    elapsed = time.perf_counter() - started

    experiment_results = []
    cursor = 0
    for scenario, tasks in zip(suite.experiments, experiment_tasks):
        experiment_results.append(
            ExperimentScenarioResult(
                scenario=scenario,
                results=tuple(flat_results[cursor : cursor + len(tasks)]),
                task_keys=tuple(task.key() for task in tasks),
            )
        )
        cursor += len(tasks)

    runtime_info: dict[str, object] = {
        "parallel": runner.parallel,
        "max_workers": runner.max_workers,
        "cache": runner.cache.stats.as_dict() if runner.cache else None,
        "task_cache": (
            task_runner.cache.stats.as_dict() if task_runner.cache else None
        ),
        "task_runner": task_runner.stats.as_dict(),
        "points": sum(len(plan.memory_sizes) for plan in plans),
        "experiment_tasks": sum(len(tasks) for tasks in experiment_tasks),
    }
    result = SuiteResult(
        suite=suite,
        results=tuple(
            ScenarioResult(scenario=scenario, sweep=sweep)
            for scenario, sweep in zip(suite.scenarios, sweeps)
        ),
        elapsed_seconds=elapsed,
        runtime=runtime_info,
        experiments=tuple(experiment_results),
    )
    if record:
        store = store_for(runner)
        if store is not None:
            # Imported lazily for the same cycle reason as store_for.
            from repro.obs.trace import current_trace_id
            from repro.store.readers import ingest_payload

            try:
                ingest_payload(
                    store, result.as_dict(), trace_id=current_trace_id()
                )
            except OSError:
                # Recording history is best-effort: a disk error (real or
                # injected) must not fail a suite whose results are in hand.
                pass
    return result

"""Declarative scenario suites: named batches of sweeps for the runtime.

A :class:`Scenario` names one kernel, one problem scale and one memory grid
(plus optional rebalancing alphas and a fleet of PE configurations to assess
balance against).  A :class:`ScenarioSuite` is a named tuple of scenarios;
:func:`run_suite` lowers a suite onto a :class:`~repro.runtime.engine.SweepRunner`
as one flat batch of points, so every kernel execution in the suite shares
the same worker pool and result cache.

The named suites double as the CI benchmark surface: ``repro suite quick``
emits the machine-readable JSON that the benchmark smoke job uploads as a
build artifact (``BENCH_suite_<name>.json``).
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis.fitting import fit_power_law, select_intensity_model
from repro.analysis.sweep import MemorySweepResult, measured_rebalance_curve
from repro.core.model import ProcessingElement, assess_balance
from repro.exceptions import ConfigurationError
from repro.kernels import (
    BlockedFFT,
    BlockedLUTriangularization,
    BlockedMatrixMultiply,
    ExternalMergeSort,
    GridRelaxation,
    StreamingMatrixVectorProduct,
    StreamingSparseMatrixVector,
    StreamingTriangularSolve,
)
from repro.kernels.base import Kernel
from repro.runtime.engine import SweepPlan, SweepRunner

__all__ = [
    "PEConfig",
    "Scenario",
    "ScenarioSuite",
    "ScenarioResult",
    "SuiteResult",
    "kernel_factories",
    "build_kernel",
    "suite_names",
    "get_suite",
    "run_suite",
]

RESULT_SCHEMA = "repro-suite-result/v1"


KERNEL_FACTORIES: dict[str, Callable[[], Kernel]] = {
    "matmul": BlockedMatrixMultiply,
    "triangularization": BlockedLUTriangularization,
    "grid1d": lambda: GridRelaxation(dimension=1),
    "grid2d": lambda: GridRelaxation(dimension=2),
    "grid3d": lambda: GridRelaxation(dimension=3),
    "grid4d": lambda: GridRelaxation(dimension=4),
    "fft": BlockedFFT,
    "sorting": ExternalMergeSort,
    "matvec": StreamingMatrixVectorProduct,
    "triangular_solve": StreamingTriangularSolve,
    "sparse_matvec": StreamingSparseMatrixVector,
}


def kernel_factories() -> dict[str, Callable[[], Kernel]]:
    """Name -> factory for every kernel a scenario can reference."""
    return dict(KERNEL_FACTORIES)


def build_kernel(name: str) -> Kernel:
    """Instantiate a scenario kernel by name."""
    try:
        factory = KERNEL_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(KERNEL_FACTORIES))
        raise ConfigurationError(
            f"unknown scenario kernel {name!r}; known kernels: {known}"
        ) from None
    return factory()


@dataclass(frozen=True)
class PEConfig:
    """One processing element of a scenario's fleet (memory comes per point)."""

    name: str
    compute_bandwidth: float
    io_bandwidth: float

    def processing_element(self, memory_words: int) -> ProcessingElement:
        return ProcessingElement(
            compute_bandwidth=self.compute_bandwidth,
            io_bandwidth=self.io_bandwidth,
            memory_words=memory_words,
            name=self.name,
        )


@dataclass(frozen=True)
class Scenario:
    """One kernel x one problem scale x one memory grid (+ optional extras)."""

    name: str
    kernel: str
    memory_sizes: tuple[int, ...]
    scale: int
    alphas: tuple[float, ...] = ()
    pes: tuple[PEConfig, ...] = ()

    def plan(self) -> SweepPlan:
        return SweepPlan(
            kernel=build_kernel(self.kernel),
            memory_sizes=self.memory_sizes,
            scale=self.scale,
            name=self.name,
        )


@dataclass(frozen=True)
class ScenarioSuite:
    """A named, ordered collection of scenarios."""

    name: str
    description: str
    scenarios: tuple[Scenario, ...]

    def __post_init__(self) -> None:
        names = [scenario.name for scenario in self.scenarios]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ConfigurationError(
                f"suite {self.name!r} has duplicate scenario names: "
                + ", ".join(duplicates)
            )


def scenario_grid(
    prefix: str,
    kernels: Sequence[str],
    memory_sizes: Sequence[int],
    scales: dict[str, int],
    *,
    alphas: Sequence[float] = (),
    pes: Sequence[PEConfig] = (),
) -> tuple[Scenario, ...]:
    """Cross-product helper: one scenario per kernel over a shared grid."""
    return tuple(
        Scenario(
            name=f"{prefix}-{kernel}",
            kernel=kernel,
            memory_sizes=tuple(memory_sizes),
            scale=scales[kernel],
            alphas=tuple(alphas),
            pes=tuple(pes),
        )
        for kernel in kernels
    )


# ---------------------------------------------------------------------------
# The named suites.
# ---------------------------------------------------------------------------

_DEFAULT_ALPHAS = (1.5, 2.0, 3.0)

#: A small fleet spanning the balance spectrum: the baseline PE, one with a
#: 4x compute upgrade (the paper's rebalancing thought experiment), and one
#: with the I/O bandwidth doubled instead.
_FLEET = (
    PEConfig("baseline", compute_bandwidth=8e6, io_bandwidth=1e6),
    PEConfig("compute-4x", compute_bandwidth=32e6, io_bandwidth=1e6),
    PEConfig("io-2x", compute_bandwidth=8e6, io_bandwidth=2e6),
)


def _quick_suite() -> ScenarioSuite:
    return ScenarioSuite(
        name="quick",
        description=(
            "Small instances of every paper kernel; the CI benchmark smoke "
            "suite (seconds, not minutes)."
        ),
        scenarios=(
            Scenario("quick-matmul", "matmul", (12, 27, 48, 75, 108), 24, _DEFAULT_ALPHAS),
            Scenario(
                "quick-triangularization",
                "triangularization",
                (12, 27, 48, 75, 108),
                24,
                _DEFAULT_ALPHAS,
            ),
            Scenario("quick-grid2d", "grid2d", (36, 100, 256, 576), 7, _DEFAULT_ALPHAS),
            Scenario("quick-fft", "fft", (4, 8, 64, 2048), 10, _DEFAULT_ALPHAS),
            Scenario("quick-sorting", "sorting", (8, 32, 128, 512), 16384, _DEFAULT_ALPHAS),
            Scenario("quick-matvec", "matvec", (8, 16, 32, 64, 128), 32),
            Scenario(
                "quick-triangular-solve", "triangular_solve", (8, 16, 32, 64, 128), 32
            ),
            Scenario("quick-sparse-matvec", "sparse_matvec", (8, 32, 128, 512), 48),
        ),
    )


def _full_suite() -> ScenarioSuite:
    return ScenarioSuite(
        name="full",
        description=(
            "The benchmark-harness problem sizes for every paper kernel; the "
            "grids behind experiments E1-E8."
        ),
        scenarios=(
            Scenario(
                "full-matmul", "matmul", (12, 27, 48, 108, 192, 300, 432), 48, _DEFAULT_ALPHAS
            ),
            Scenario(
                "full-triangularization",
                "triangularization",
                (12, 27, 48, 108, 192, 300, 432),
                48,
                _DEFAULT_ALPHAS,
            ),
            Scenario(
                "full-grid2d", "grid2d", (36, 100, 256, 576, 1296, 2704), 7, _DEFAULT_ALPHAS
            ),
            Scenario(
                "full-grid3d", "grid3d", (64, 216, 512, 1728, 4096), 7, _DEFAULT_ALPHAS
            ),
            Scenario("full-fft", "fft", (4, 8, 16, 32, 128, 8192), 12, _DEFAULT_ALPHAS),
            Scenario("full-sorting", "sorting", (8, 32, 128, 512), 16384, _DEFAULT_ALPHAS),
            Scenario("full-matvec", "matvec", (8, 16, 32, 64, 128, 256), 64),
            Scenario(
                "full-triangular-solve",
                "triangular_solve",
                (8, 16, 32, 64, 128, 256),
                64,
            ),
            Scenario("full-sparse-matvec", "sparse_matvec", (8, 32, 128, 512, 2048), 64),
        ),
    )


def _fleet_suite() -> ScenarioSuite:
    scales = {"matmul": 24, "fft": 10, "grid2d": 7, "matvec": 32}
    return ScenarioSuite(
        name="fleet",
        description=(
            "One computation of each class assessed against a fleet of PE "
            "configurations (baseline, compute-upgraded, I/O-upgraded)."
        ),
        scenarios=scenario_grid(
            "fleet",
            ("matmul", "grid2d", "fft", "matvec"),
            (16, 64, 256),
            scales,
            alphas=_DEFAULT_ALPHAS,
            pes=_FLEET,
        ),
    )


def _mixed_suite() -> ScenarioSuite:
    scales = {
        "matmul": 24,
        "fft": 10,
        "sorting": 16384,
        "matvec": 32,
        "triangular_solve": 32,
    }
    return ScenarioSuite(
        name="mixed",
        description=(
            "A mixed workload: compute-bound, exponential-law and I/O-bounded "
            "kernels interleaved over one shared memory grid."
        ),
        scenarios=scenario_grid(
            "mixed",
            ("matmul", "fft", "sorting", "matvec", "triangular_solve"),
            (8, 32, 128),
            scales,
        ),
    )


_SUITES: dict[str, Callable[[], ScenarioSuite]] = {
    "quick": _quick_suite,
    "full": _full_suite,
    "fleet": _fleet_suite,
    "mixed": _mixed_suite,
}


def suite_names() -> list[str]:
    """Names of every registered scenario suite."""
    return list(_SUITES)


def get_suite(name: str) -> ScenarioSuite:
    """Look up a named suite."""
    try:
        return _SUITES[name]()
    except KeyError:
        known = ", ".join(sorted(_SUITES))
        raise ConfigurationError(
            f"unknown scenario suite {name!r}; known suites: {known}"
        ) from None


# ---------------------------------------------------------------------------
# Running a suite and serialising the result.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's measurements plus the derived analysis."""

    scenario: Scenario
    sweep: MemorySweepResult

    def rows(self) -> list[dict[str, float]]:
        return self.sweep.rows()

    def fit(self) -> dict[str, object]:
        sizes = self.sweep.memory_sizes
        intensities = self.sweep.intensities
        return {
            "power_law_exponent": fit_power_law(sizes, intensities).exponent,
            "best_model": select_intensity_model(sizes, intensities),
            "computation_class": self.sweep.classification().computation_class.value,
        }

    def rebalance_rows(self) -> list[dict[str, object]]:
        if not self.scenario.alphas:
            return []
        memory_old = float(self.sweep.memory_sizes[0])
        curve = measured_rebalance_curve(self.sweep, memory_old, self.scenario.alphas)
        return [
            {
                "alpha": result.alpha,
                "memory_new": result.memory_new,
                "growth_factor": result.growth_factor,
                "feasible": result.feasible,
            }
            for result in curve
        ]

    def balance_rows(self) -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        for pe_config in self.scenario.pes:
            for memory, execution in zip(
                self.sweep.memory_sizes, self.sweep.executions
            ):
                pe = pe_config.processing_element(memory)
                assessment = assess_balance(pe, execution.cost)
                rows.append(
                    {
                        "pe": pe_config.name,
                        "memory_words": memory,
                        "bound": assessment.bound.value,
                        "compute_time": assessment.compute_time,
                        "io_time": assessment.io_time,
                        "imbalance": assessment.imbalance,
                    }
                )
        return rows

    def as_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario.name,
            "kernel": self.scenario.kernel,
            "scale": self.scenario.scale,
            "memory_sizes": list(self.sweep.memory_sizes),
            "rows": self.rows(),
            "fit": self.fit(),
            "rebalance": self.rebalance_rows(),
            "balance": self.balance_rows(),
        }


@dataclass(frozen=True)
class SuiteResult:
    """Everything one suite run produced, ready for JSON/CSV emission."""

    suite: ScenarioSuite
    results: tuple[ScenarioResult, ...]
    elapsed_seconds: float
    runtime: dict[str, object] = field(default_factory=dict)

    def scenario(self, name: str) -> ScenarioResult:
        for result in self.results:
            if result.scenario.name == name:
                return result
        known = ", ".join(r.scenario.name for r in self.results)
        raise ConfigurationError(
            f"no scenario {name!r} in suite {self.suite.name!r}; ran: {known}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "schema": RESULT_SCHEMA,
            "suite": self.suite.name,
            "description": self.suite.description,
            "elapsed_seconds": self.elapsed_seconds,
            "runtime": dict(self.runtime),
            "scenarios": [result.as_dict() for result in self.results],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    def csv_rows(self) -> Iterable[dict[str, object]]:
        for result in self.results:
            for row in result.rows():
                yield {
                    "suite": self.suite.name,
                    "scenario": result.scenario.name,
                    "kernel": result.scenario.kernel,
                    **row,
                }

    def write_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = list(self.csv_rows())
        if not rows:
            raise ConfigurationError(
                f"suite {self.suite.name!r} produced no rows to write"
            )
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        return path


def run_suite(
    suite: ScenarioSuite | str,
    runner: SweepRunner | None = None,
) -> SuiteResult:
    """Execute every scenario of a suite as one flat batch of sweep points."""
    if isinstance(suite, str):
        suite = get_suite(suite)
    runner = runner or SweepRunner()
    plans = [scenario.plan() for scenario in suite.scenarios]
    started = time.perf_counter()
    sweeps = runner.run_plans(plans)
    elapsed = time.perf_counter() - started
    runtime_info: dict[str, object] = {
        "parallel": runner.parallel,
        "max_workers": runner.max_workers,
        "cache": runner.cache.stats.as_dict() if runner.cache else None,
        "points": sum(len(plan.memory_sizes) for plan in plans),
    }
    return SuiteResult(
        suite=suite,
        results=tuple(
            ScenarioResult(scenario=scenario, sweep=sweep)
            for scenario, sweep in zip(suite.scenarios, sweeps)
        ),
        elapsed_seconds=elapsed,
        runtime=runtime_info,
    )

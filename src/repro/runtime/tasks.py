"""Generic experiment tasks: pooled, cached execution of any computation.

PR 1's :class:`~repro.runtime.engine.SweepRunner` parallelised and cached one
shape of work -- a kernel executed at one memory size.  This module abstracts
that shape away: a :class:`Task` is any top-level callable plus its keyword
parameters, content-addressed by a SHA-256 digest of

* the callable's fully qualified name,
* the *source code* of its module (plus any explicitly named supporting
  modules, so editing the algorithm invalidates previously cached results),
* and a structural fingerprint of the parameters.

A :class:`TaskRunner` resolves a batch of tasks against a
:class:`~repro.runtime.cache.TaskCache`, fans the misses out across a
``concurrent.futures`` process pool, and reassembles results in submission
order -- so serial and parallel execution of the same batch are bitwise
identical, and warm reruns replay entirely from the cache.  The sweep engine
is one client of this layer (its points are tasks over
``_execute_point``); the experiment drivers (Figure 2, Section 4 arrays, the
pebble game, the Warp study) are the others.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.runtime.cache import MISS, TaskCache, _fingerprint

__all__ = [
    "Task",
    "TaskRunner",
    "task_key",
    "callable_code_version",
    "default_worker_count",
    "execute_tasks",
    "run_tasks",
]

TASK_KEY_SCHEMA = 1


def default_worker_count() -> int:
    """Worker processes to use when the caller does not say.

    Prefers the scheduling affinity mask over the raw core count: in
    affinity-restricted containers (CI runners, cgroup-limited jobs)
    ``os.cpu_count()`` reports the host's cores and oversubscribes the pool.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return os.cpu_count() or 1


@lru_cache(maxsize=None)
def _module_source_digest(module_name: str) -> str:
    """Digest of one module's source (the name itself when unavailable)."""
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            module = None
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):  # source unavailable (REPL, frozen, missing)
        source = module_name
    return hashlib.sha256(source.encode()).hexdigest()


def callable_code_version(
    fn: Callable[..., Any], modules: Sequence[str] = ()
) -> str:
    """A digest of a callable's implementation, for cache invalidation.

    Hashes the source of the module defining ``fn`` plus any explicitly named
    supporting modules.  Hashing whole modules rather than function bodies
    means edits to helpers the callable uses also invalidate cached results;
    the cost is occasional over-invalidation, which is the safe direction.
    """
    names = sorted({fn.__module__, *modules})
    hasher = hashlib.sha256()
    for name in names:
        hasher.update(name.encode())
        hasher.update(_module_source_digest(name).encode())
    return hasher.hexdigest()[:16]


def task_key(
    fn: Callable[..., Any],
    params: Mapping[str, Any],
    modules: Sequence[str] = (),
) -> str:
    """Content address of one ``fn(**params)`` call."""
    payload = {
        "schema": TASK_KEY_SCHEMA,
        "callable": f"{fn.__module__}.{fn.__qualname__}",
        "code_version": callable_code_version(fn, modules),
        "params": _fingerprint(dict(params)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class Task:
    """One deterministic computation: a picklable callable plus parameters.

    ``fn`` must be an importable top-level function (process pools pickle it
    by reference) and must be deterministic in its parameters -- the cache
    replays previous results under the assumption that equal keys mean equal
    values.  ``modules`` names additional modules whose source participates
    in the cache key, for callables whose real algorithm lives elsewhere
    (e.g. an experiment driver delegating to ``repro.pebble.game``).
    """

    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    name: str | None = None
    modules: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise ConfigurationError(f"task fn must be callable, got {self.fn!r}")
        qualname = getattr(self.fn, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise ConfigurationError(
                f"task fn must be a top-level function (picklable by "
                f"reference), got {qualname!r}"
            )
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "modules", tuple(self.modules))

    @property
    def label(self) -> str:
        return self.name or f"{self.fn.__module__}.{self.fn.__qualname__}"

    def key(self) -> str:
        """The task's content address (stable across processes and runs)."""
        return task_key(self.fn, self.params, self.modules)

    def run(self) -> Any:
        """Execute the task in the current process."""
        return self.fn(**self.params)


def _run_task(task: Task) -> Any:
    """Worker entry point (top-level, picklable)."""
    return task.run()


def execute_tasks(
    tasks: Sequence[Task], *, parallel: bool, max_workers: int
) -> list[Any]:
    """Execute tasks (no cache), preserving submission order.

    The shared pool primitive behind both :class:`TaskRunner` and the sweep
    engine: ``pool.map`` collects results back in submission order, so the
    output is deterministic and identical to a serial run.
    """
    if not tasks:
        return []
    if not parallel or max_workers == 1 or len(tasks) == 1:
        return [task.run() for task in tasks]
    workers = min(max_workers, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_task, tasks))


class TaskRunner:
    """Executes task batches serially or across a process pool, with caching.

    Parameters
    ----------
    parallel:
        Fan cache-missing tasks out across a process pool.  Results come
        back in submission order either way.
    max_workers:
        Pool size; defaults to the scheduling-affinity core count.
    cache:
        Optional :class:`~repro.runtime.cache.TaskCache`.  Tasks whose key is
        present are replayed without executing anything; fresh results are
        stored back.
    """

    def __init__(
        self,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        cache: TaskCache | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers!r}"
            )
        self.parallel = parallel
        self.max_workers = max_workers or default_worker_count()
        self.cache = cache

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        """Resolve every task, via the cache where possible, in order."""
        results: list[Any] = [None] * len(tasks)
        pending: list[tuple[int, Task, str | None]] = []
        for i, task in enumerate(tasks):
            key = None
            if self.cache is not None:
                key = task.key()
                hit = self.cache.load(key)
                if hit is not MISS:
                    results[i] = hit
                    continue
            pending.append((i, task, key))

        fresh = execute_tasks(
            [task for _, task, _ in pending],
            parallel=self.parallel,
            max_workers=self.max_workers,
        )
        for (i, task, key), value in zip(pending, fresh):
            results[i] = value
            if self.cache is not None and key is not None:
                self.cache.store(key, value, label=task.label)
        return results

    def run_one(self, task: Task) -> Any:
        """Convenience: resolve a single task."""
        return self.run([task])[0]


def run_tasks(
    tasks: Sequence[Task],
    *,
    parallel: bool = False,
    max_workers: int | None = None,
    cache: TaskCache | None = None,
) -> list[Any]:
    """One-shot convenience wrapper around :class:`TaskRunner`."""
    runner = TaskRunner(parallel=parallel, max_workers=max_workers, cache=cache)
    return runner.run(tasks)

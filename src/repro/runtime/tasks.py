"""Generic experiment tasks: pooled, cached execution of any computation.

PR 1's :class:`~repro.runtime.engine.SweepRunner` parallelised and cached one
shape of work -- a kernel executed at one memory size.  This module abstracts
that shape away: a :class:`Task` is any top-level callable plus its keyword
parameters, content-addressed by a SHA-256 digest of

* the callable's fully qualified name,
* the *source code* of its module (plus any explicitly named supporting
  modules, so editing the algorithm invalidates previously cached results),
* and a structural fingerprint of the parameters.

A :class:`TaskRunner` resolves a batch of tasks against a
:class:`~repro.runtime.cache.TaskCache`, fans the misses out across a
``concurrent.futures`` process pool, and reassembles results in submission
order -- so serial and parallel execution of the same batch are bitwise
identical, and warm reruns replay entirely from the cache.  The sweep engine
is one client of this layer (its points are tasks over
``_execute_point``); the experiment drivers (Figure 2, Section 4 arrays, the
pebble game, the Warp study) are the others.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
import os
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ConfigurationError, TaskExecutionError
from repro.obs import spans as obs_spans
from repro.obs.metrics import REGISTRY
from repro.runtime.cache import MISS, TaskCache, _fingerprint

__all__ = [
    "Task",
    "TaskRunner",
    "TaskRunStats",
    "task_key",
    "callable_code_version",
    "default_worker_count",
    "execute_tasks",
    "run_tasks",
]

TASK_KEY_SCHEMA = 1

# Process-wide task-runtime instrumentation for ``GET /metrics``.  Wall time
# is measured around ``task.run()`` itself -- inside the worker process when
# pooled -- so the histogram reports task cost, not pool-queueing delay.
_METRIC_EXECUTED = REGISTRY.counter(
    "repro_tasks_executed_total", "Tasks actually executed (cache misses)."
)
_METRIC_CACHE_HITS = REGISTRY.counter(
    "repro_tasks_cache_hits_total", "Tasks replayed from the task cache."
)
_METRIC_DEDUPED = REGISTRY.counter(
    "repro_tasks_deduped_total",
    "Tasks resolved by an identical task earlier in the same batch.",
)
_METRIC_TASK_SECONDS = REGISTRY.histogram(
    "repro_task_seconds", "Wall time of one executed task."
)


def worker_count_source() -> tuple[int, str]:
    """Default worker count plus the name of the source that provided it.

    Returns ``(count, "sched_getaffinity")`` when the scheduling affinity
    mask was consulted, ``(count, "os.cpu_count")`` on platforms without
    ``os.sched_getaffinity`` (macOS, Windows) or when querying the mask
    fails.  Diagnostics (``repro doctor``) report the source: a count that
    came from ``os.cpu_count`` says nothing about container or cgroup CPU
    limits, so presenting it as an affinity mask would be misleading.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1, "sched_getaffinity"
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return os.cpu_count() or 1, "os.cpu_count"


def default_worker_count() -> int:
    """Worker processes to use when the caller does not say.

    Prefers the scheduling affinity mask over the raw core count: in
    affinity-restricted containers (CI runners, cgroup-limited jobs)
    ``os.cpu_count()`` reports the host's cores and oversubscribes the pool.
    """
    return worker_count_source()[0]


@lru_cache(maxsize=None)
def _module_source_digest(module_name: str) -> str:
    """Digest of one module's source (the name itself when unavailable)."""
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            module = None
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):  # source unavailable (REPL, frozen, missing)
        source = module_name
    return hashlib.sha256(source.encode()).hexdigest()


def callable_code_version(
    fn: Callable[..., Any], modules: Sequence[str] = ()
) -> str:
    """A digest of a callable's implementation, for cache invalidation.

    Hashes the source of the module defining ``fn`` plus any explicitly named
    supporting modules.  Hashing whole modules rather than function bodies
    means edits to helpers the callable uses also invalidate cached results;
    the cost is occasional over-invalidation, which is the safe direction.
    """
    names = sorted({fn.__module__, *modules})
    hasher = hashlib.sha256()
    for name in names:
        hasher.update(name.encode())
        hasher.update(_module_source_digest(name).encode())
    return hasher.hexdigest()[:16]


def task_key(
    fn: Callable[..., Any],
    params: Mapping[str, Any],
    modules: Sequence[str] = (),
) -> str:
    """Content address of one ``fn(**params)`` call."""
    payload = {
        "schema": TASK_KEY_SCHEMA,
        "callable": f"{fn.__module__}.{fn.__qualname__}",
        "code_version": callable_code_version(fn, modules),
        "params": _fingerprint(dict(params)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class Task:
    """One deterministic computation: a picklable callable plus parameters.

    ``fn`` must be an importable top-level function (process pools pickle it
    by reference) and must be deterministic in its parameters -- the cache
    replays previous results under the assumption that equal keys mean equal
    values.  ``modules`` names additional modules whose source participates
    in the cache key, for callables whose real algorithm lives elsewhere
    (e.g. an experiment driver delegating to ``repro.pebble.game``).
    """

    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    name: str | None = None
    modules: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise ConfigurationError(f"task fn must be callable, got {self.fn!r}")
        qualname = getattr(self.fn, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise ConfigurationError(
                f"task fn must be a top-level function (picklable by "
                f"reference), got {qualname!r}"
            )
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "modules", tuple(self.modules))

    @property
    def label(self) -> str:
        return self.name or f"{self.fn.__module__}.{self.fn.__qualname__}"

    def key(self) -> str:
        """The task's content address (stable across processes and runs)."""
        return task_key(self.fn, self.params, self.modules)

    def run(self) -> Any:
        """Execute the task in the current process."""
        return self.fn(**self.params)


def _run_task(task: Task) -> tuple[float, Any]:
    """Worker entry point (top-level, picklable): ``(seconds, value)``.

    The duration is measured here, in the executing process, so the parent's
    ``repro_task_seconds`` histogram reports true task wall time even when
    the task ran in a pool child.
    """
    start = time.perf_counter()
    value = task.run()
    return time.perf_counter() - start, value


def _run_task_traced(
    task: Task, ctx: tuple[str | None, str | None]
) -> tuple[float, Any, list[dict[str, Any]]]:
    """Traced worker entry point: ``(seconds, value, finished_spans)``.

    Submitted instead of :func:`_run_task` only when span collection is on
    in the parent, so the disabled path ships exactly the pre-span tuple.
    ``ctx`` carries the parent's trace/span IDs across the pool boundary;
    the task runs under a local ``kind="task"`` span (engine phases
    aggregate beneath it) and every span finished in the child returns
    with the result for the parent to absorb.
    """
    start = time.perf_counter()
    with obs_spans.capture_spans(
        ctx, f"task:{task.label}", kind="task", attributes={"key": task.key()}
    ) as captured:
        value = task.run()
    return time.perf_counter() - start, value, captured.spans


def _wrap_failure(task: Task, exc: BaseException) -> TaskExecutionError:
    return TaskExecutionError(
        f"task {task.label!r} failed: {type(exc).__name__}: {exc}",
        label=task.label,
    )


def execute_tasks(
    tasks: Sequence[Task], *, parallel: bool, max_workers: int
) -> list[Any]:
    """Execute tasks (no cache), preserving submission order.

    The shared pool primitive behind both :class:`TaskRunner` and the sweep
    engine: results are collected back in submission order, so the output is
    deterministic and identical to a serial run.  A task that raises surfaces
    as :class:`~repro.exceptions.TaskExecutionError` naming the failing
    task's label (the original exception is chained as ``__cause__``); in a
    parallel batch the first failure *in submission order* wins, matching the
    serial path.
    """
    if not tasks:
        return []
    # None when span collection is off: the untraced entry point is then
    # submitted unchanged, so tracing-off is byte-identical to pre-span code.
    ctx = obs_spans.task_context()
    if not parallel or max_workers == 1 or len(tasks) == 1:
        results = []
        for task in tasks:
            try:
                if ctx is None:
                    seconds, value = _run_task(task)
                else:
                    # In-process: the contextvar already parents the span;
                    # capture_spans is reserved for pool children, where
                    # swapping the process-global collector is race-free.
                    with obs_spans.span(
                        f"task:{task.label}",
                        kind="task",
                        attributes={"key": task.key()},
                    ):
                        seconds, value = _run_task(task)
            except Exception as exc:
                raise _wrap_failure(task, exc) from exc
            _METRIC_TASK_SECONDS.observe(seconds)
            results.append(value)
        return results
    workers = min(max_workers, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if ctx is None:
            futures = [pool.submit(_run_task, task) for task in tasks]
        else:
            futures = [pool.submit(_run_task_traced, task, ctx) for task in tasks]
        results = []
        for task, future in zip(tasks, futures):
            try:
                if ctx is None:
                    seconds, value = future.result()
                else:
                    seconds, value, finished = future.result()
                    obs_spans.absorb(finished)
            except Exception as exc:
                raise _wrap_failure(task, exc) from exc
            _METRIC_TASK_SECONDS.observe(seconds)
            results.append(value)
        return results


@dataclass
class TaskRunStats:
    """Counters accumulated over the lifetime of a :class:`TaskRunner`.

    ``deduped`` counts tasks that were *not* executed because an identical
    task (same content-addressed key) appeared earlier in the same batch;
    the job-service scheduler reads these counters to prove that N identical
    submissions ran the underlying work once.
    """

    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0

    @property
    def resolved(self) -> int:
        return self.executed + self.cache_hits + self.deduped

    def as_dict(self) -> dict[str, int]:
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
        }


class TaskRunner:
    """Executes task batches serially or across a process pool, with caching.

    Parameters
    ----------
    parallel:
        Fan cache-missing tasks out across a process pool.  Results come
        back in submission order either way.
    max_workers:
        Pool size; defaults to the scheduling-affinity core count.
    cache:
        Optional :class:`~repro.runtime.cache.TaskCache`.  Tasks whose key is
        present are replayed without executing anything; fresh results are
        stored back.
    dedup:
        Collapse tasks *within a batch* that share a content-addressed key:
        one representative executes and every duplicate observes its result.
        Safe because equal keys mean equal code and equal parameters, and the
        runtime requires tasks to be deterministic (the same assumption the
        cache already replays results under).
    """

    def __init__(
        self,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        cache: TaskCache | None = None,
        dedup: bool = True,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers!r}"
            )
        self.parallel = parallel
        self.max_workers = max_workers or default_worker_count()
        self.cache = cache
        self.dedup = dedup
        self.stats = TaskRunStats()
        # One runner may be shared by several threads (the job service's
        # worker pool); counter updates are read-modify-write and need a lock.
        self._stats_lock = threading.Lock()

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        """Resolve every task, via the cache where possible, in order."""
        if not obs_spans.enabled():
            return self._resolve(tasks)
        with obs_spans.span(
            "tasks.run", kind="runtime", attributes={"tasks": len(tasks)}
        ) as batch_span:
            results = self._resolve(tasks)
            # Runner-lifetime counters, not batch counters: enough to tell
            # "replayed from cache" from "recomputed" for a slow batch.
            batch_span.set(
                executed_total=self.stats.executed,
                cache_hits_total=self.stats.cache_hits,
                deduped_total=self.stats.deduped,
            )
            return results

    def _resolve(self, tasks: Sequence[Task]) -> list[Any]:
        results: list[Any] = [None] * len(tasks)
        pending: list[tuple[int, Task, str | None]] = []
        cache_hits = 0
        for i, task in enumerate(tasks):
            key = None
            if self.cache is not None or self.dedup:
                key = task.key()
            if self.cache is not None:
                hit = self.cache.load(key)
                if hit is not MISS:
                    results[i] = hit
                    cache_hits += 1
                    continue
            pending.append((i, task, key))

        # In-batch dedup: the first task with a given key executes, later
        # ones become followers and observe the representative's result.
        unique: list[tuple[int, Task, str | None]] = []
        followers: dict[str, list[int]] = {}
        seen: dict[str, int] = {}
        deduped = 0
        for i, task, key in pending:
            if self.dedup and key is not None and key in seen:
                followers.setdefault(key, []).append(i)
                deduped += 1
                continue
            if key is not None:
                seen[key] = i
            unique.append((i, task, key))

        fresh = execute_tasks(
            [task for _, task, _ in unique],
            parallel=self.parallel,
            max_workers=self.max_workers,
        )
        with self._stats_lock:
            self.stats.cache_hits += cache_hits
            self.stats.deduped += deduped
            self.stats.executed += len(unique)
        _METRIC_CACHE_HITS.inc(cache_hits)
        _METRIC_DEDUPED.inc(deduped)
        _METRIC_EXECUTED.inc(len(unique))
        for (i, task, key), value in zip(unique, fresh):
            results[i] = value
            if self.cache is not None and key is not None:
                self.cache.store(key, value, label=task.label)
            if key is not None:
                for j in followers.get(key, ()):
                    results[j] = value
        return results

    def run_one(self, task: Task) -> Any:
        """Convenience: resolve a single task."""
        return self.run([task])[0]


def run_tasks(
    tasks: Sequence[Task],
    *,
    parallel: bool = False,
    max_workers: int | None = None,
    cache: TaskCache | None = None,
) -> list[Any]:
    """One-shot convenience wrapper around :class:`TaskRunner`."""
    runner = TaskRunner(parallel=parallel, max_workers=max_workers, cache=cache)
    return runner.run(tasks)

"""Experiment-task runtime: vectorized, parallel and cached execution.

This package replaces per-point serial experiment loops with four layers:

* :mod:`repro.runtime.vectorized` -- batch-evaluate the registry's closed-form
  cost models, intensity functions and rebalancing laws over numpy grids of
  ``(N, M, alpha)`` in single array passes;
* :mod:`repro.runtime.tasks` -- the generic task abstraction: any top-level
  callable plus parameters, content-addressed by module source, executed
  serially or across a process pool with deterministic ordering;
* :mod:`repro.runtime.engine` -- the memory-sweep client of the task layer,
  fanning instrumented-kernel executions out with per-point caching via
* :mod:`repro.runtime.cache` -- content-addressed on-disk caches (measured
  sweep points in :class:`ResultCache`, whole experiment results in
  :class:`TaskCache`);
* :mod:`repro.runtime.suites` -- declarative, named scenario suites (kernel
  sweeps plus experiment tasks) that lower onto the engines and emit
  JSON/CSV for the benchmark harness and CI.
"""

from repro.runtime.cache import (
    MISS,
    CacheStats,
    ResultCache,
    TaskCache,
    execution_key,
    kernel_code_version,
)
from repro.runtime.engine import SweepPlan, SweepRunner, run_sweep
from repro.runtime.suites import (
    ExperimentScenario,
    ExperimentScenarioResult,
    PEConfig,
    Scenario,
    ScenarioResult,
    ScenarioSuite,
    SuiteResult,
    build_kernel,
    experiment_kinds,
    get_suite,
    kernel_factories,
    run_suite,
    store_for,
    suite_names,
    task_runner_for,
)
from repro.runtime.tasks import (
    Task,
    TaskRunner,
    TaskRunStats,
    callable_code_version,
    default_worker_count,
    execute_tasks,
    run_tasks,
    task_key,
)
from repro.runtime.vectorized import (
    analytic_summary_rows,
    cost_grid,
    intensity_grid,
    rebalance_curves,
    rebalance_grid,
)

__all__ = [
    "MISS",
    "CacheStats",
    "ExperimentScenario",
    "ExperimentScenarioResult",
    "PEConfig",
    "ResultCache",
    "Scenario",
    "ScenarioResult",
    "ScenarioSuite",
    "SuiteResult",
    "SweepPlan",
    "SweepRunner",
    "Task",
    "TaskCache",
    "TaskRunner",
    "TaskRunStats",
    "analytic_summary_rows",
    "build_kernel",
    "callable_code_version",
    "cost_grid",
    "default_worker_count",
    "execute_tasks",
    "execution_key",
    "experiment_kinds",
    "get_suite",
    "intensity_grid",
    "kernel_code_version",
    "kernel_factories",
    "rebalance_curves",
    "rebalance_grid",
    "run_suite",
    "run_sweep",
    "run_tasks",
    "store_for",
    "suite_names",
    "task_key",
    "task_runner_for",
]

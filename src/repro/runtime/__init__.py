"""Scenario-sweep runtime: vectorized, parallel and cached experiment execution.

This package replaces per-point serial experiment loops with three layers:

* :mod:`repro.runtime.vectorized` -- batch-evaluate the registry's closed-form
  cost models, intensity functions and rebalancing laws over numpy grids of
  ``(N, M, alpha)`` in single array passes;
* :mod:`repro.runtime.engine` -- fan instrumented-kernel executions out across
  a process pool with deterministic result ordering, backed by
* :mod:`repro.runtime.cache` -- a content-addressed on-disk result cache keyed
  by kernel code, configuration, problem and memory size;
* :mod:`repro.runtime.suites` -- declarative, named scenario suites (kernel x
  problem x memory grid x PE fleet) that lower onto the engine and emit
  JSON/CSV for the benchmark harness and CI.
"""

from repro.runtime.cache import CacheStats, ResultCache, execution_key, kernel_code_version
from repro.runtime.engine import SweepPlan, SweepRunner, default_worker_count, run_sweep
from repro.runtime.suites import (
    PEConfig,
    Scenario,
    ScenarioResult,
    ScenarioSuite,
    SuiteResult,
    build_kernel,
    get_suite,
    kernel_factories,
    run_suite,
    suite_names,
)
from repro.runtime.vectorized import (
    analytic_summary_rows,
    cost_grid,
    intensity_grid,
    rebalance_curves,
    rebalance_grid,
)

__all__ = [
    "CacheStats",
    "PEConfig",
    "ResultCache",
    "Scenario",
    "ScenarioResult",
    "ScenarioSuite",
    "SuiteResult",
    "SweepPlan",
    "SweepRunner",
    "analytic_summary_rows",
    "build_kernel",
    "cost_grid",
    "default_worker_count",
    "execution_key",
    "get_suite",
    "intensity_grid",
    "kernel_code_version",
    "kernel_factories",
    "rebalance_curves",
    "rebalance_grid",
    "run_suite",
    "run_sweep",
    "suite_names",
]

"""Vectorized analytic evaluation over ``(N, M, alpha)`` grids.

The paper's analytic artifacts -- intensity curves ``F(M)``, cost tables
``(C_comp, C_io)(N, M)`` and rebalancing laws ``M_new(M_old, alpha)`` -- are
all closed forms.  Evaluating them point by point through the scalar registry
API costs one Python call per grid point; this module batch-evaluates each
of them over numpy grids in a single array pass, which is what makes dense
summary tables and rebalancing curve fans cheap enough to regenerate on
every CI run.

Numerical equivalence with the scalar path is guaranteed by construction:
the registry's scalar cost models are thin wrappers around the same numpy
expressions (see ``repro.core.registry._scalarize``), and the intensity
classes implement ``batch`` with the same formulas as ``__call__``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.laws import (
    ExponentialMemoryLaw,
    InfeasibleMemoryLaw,
    MemoryLaw,
    PolynomialMemoryLaw,
)
from repro.core.model import BatchCost
from repro.core.registry import ComputationSpec, all_specs, get
from repro.exceptions import ConfigurationError
from repro.obs import spans as obs_spans

__all__ = [
    "intensity_grid",
    "cost_grid",
    "rebalance_grid",
    "rebalance_curves",
    "analytic_summary_rows",
]


def _spec_of(computation: str | ComputationSpec) -> ComputationSpec:
    if isinstance(computation, ComputationSpec):
        return computation
    return get(computation)


def intensity_grid(
    computations: Sequence[str | ComputationSpec],
    memory_words: np.ndarray | Sequence[float],
) -> dict[str, np.ndarray]:
    """``F(M)`` for several computations over one memory grid, one pass each."""
    grid = np.asarray(memory_words, dtype=float)
    return {
        _spec_of(c).name: _spec_of(c).batch_intensity(grid) for c in computations
    }


def cost_grid(
    computation: str | ComputationSpec,
    problem_sizes: np.ndarray | Sequence[float],
    memory_words: np.ndarray | Sequence[float],
) -> BatchCost:
    """Cost model over the full ``N x M`` cross-product grid.

    ``problem_sizes`` become the rows and ``memory_words`` the columns of the
    returned arrays.
    """
    n = np.asarray(problem_sizes, dtype=float).reshape(-1, 1)
    m = np.asarray(memory_words, dtype=float).reshape(1, -1)
    # Sweeps call this once per computation; the aggregating phase timer
    # keeps the whole N x M evaluation down to one sample per call.
    with obs_spans.phase("cost_grid"):
        return _spec_of(computation).batch_costs(n, m)


def rebalance_grid(
    law: MemoryLaw,
    memory_old: np.ndarray | float,
    alphas: np.ndarray | Sequence[float],
) -> np.ndarray:
    """``M_new`` for broadcast grids of ``M_old`` and ``alpha``, vectorized.

    Closed forms of the paper's three law families:

    * polynomial: ``M_new = alpha**degree * M_old``,
    * exponential: ``M_new = M_old ** alpha``,
    * infeasible:  ``M_new = inf`` for any ``alpha > 1``.

    ``inf`` entries (rather than an exception) mark infeasible points so a
    whole fan of curves can be computed in one call.
    """
    m = np.asarray(memory_old, dtype=float)
    a = np.asarray(alphas, dtype=float)
    if m.size and np.min(m) < 1:
        raise ConfigurationError(
            f"memory_old must be >= 1 word, smallest grid value is {np.min(m)!r}"
        )
    if a.size and np.min(a) < 1:
        raise ConfigurationError(
            f"alpha must be >= 1, smallest grid value is {np.min(a)!r}"
        )
    m, a = np.broadcast_arrays(m, a)
    if isinstance(law, PolynomialMemoryLaw):
        return m * a**law.degree
    if isinstance(law, ExponentialMemoryLaw):
        # Matches ExponentialMemoryLaw.required_memory: a one-word memory has
        # zero logarithmic intensity, so the minimum meaningful base is 2.
        return np.maximum(m, 2.0) ** a
    if isinstance(law, InfeasibleMemoryLaw):
        return np.where(a == 1.0, m.astype(float), math.inf)
    # Unknown closed form: fall back to the scalar law, point by point.
    out = np.empty(m.shape, dtype=float)
    flat = out.ravel()
    for i, (mi, ai) in enumerate(zip(m.ravel(), a.ravel())):
        flat[i] = law.required_memory(float(mi), float(ai))
    return out


def rebalance_curves(
    computations: Sequence[str | ComputationSpec],
    memory_old: float,
    alphas: np.ndarray | Sequence[float],
) -> dict[str, np.ndarray]:
    """The fan of ``M_new(alpha)`` curves for several computations at once."""
    a = np.asarray(alphas, dtype=float)
    return {
        _spec_of(c).name: rebalance_grid(_spec_of(c).law, memory_old, a)
        for c in computations
    }


def analytic_summary_rows(
    problem_size: int,
    memory_words: np.ndarray | Sequence[float],
    computations: Sequence[str | ComputationSpec] | None = None,
) -> list[dict[str, object]]:
    """The Section 3 summary with numbers, from one array pass per entry.

    For every computation this evaluates the cost model and the analytic
    intensity over the whole memory grid at once and reports the grid
    endpoints, replacing the thousands of scalar calls a per-point table
    would need.
    """
    grid = np.asarray(memory_words, dtype=float)
    if grid.ndim != 1 or grid.size < 1:
        raise ConfigurationError(
            f"memory_words must be a non-empty 1-d grid, got shape {grid.shape}"
        )
    specs = [_spec_of(c) for c in (computations or all_specs())]
    rows: list[dict[str, object]] = []
    for spec in specs:
        costs = spec.batch_costs(float(problem_size), grid)
        intensities = spec.batch_intensity(grid)
        rows.append(
            {
                "computation": spec.name,
                "title": spec.title,
                "section": spec.paper_section,
                "class": spec.computation_class.value,
                "law": spec.law_label,
                "memory_words": grid.tolist(),
                "model_intensity": intensities.tolist(),
                "cost_intensity": costs.intensity.tolist(),
                "compute_ops": costs.compute_ops.tolist(),
                "io_words": costs.io_words.tolist(),
            }
        )
    return rows


def summary_mapping(rows: Sequence[Mapping[str, object]]) -> dict[str, dict]:
    """Index summary rows by computation name, for JSON emission."""
    return {str(row["computation"]): dict(row) for row in rows}

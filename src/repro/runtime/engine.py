"""Parallel, cached execution of memory sweeps.

The serial :class:`~repro.analysis.sweep.MemorySweep` runs one kernel at one
memory size at a time.  This module generalises it: a :class:`SweepRunner`
flattens any number of sweeps (one kernel x one problem x a memory grid)
into a list of independent *points*, resolves as many as it can from a
:class:`~repro.runtime.cache.ResultCache`, fans the remainder out as
:class:`~repro.runtime.tasks.Task` objects across the shared process-pool
layer, and reassembles the results in deterministic order.  Serial and
parallel execution run exactly the same kernel code on exactly the same
problem instances, so their measured numbers are bitwise identical.

The sweep engine is one client of the generic task runtime
(:mod:`repro.runtime.tasks`); it keeps its own :class:`ResultCache` because
sweep points have a richer content address (kernel class + configuration +
code version + problem fingerprint + memory size) and store only the
measured numbers rather than the whole execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.analysis.sweep import MemorySweepResult, normalize_memory_sizes
from repro.exceptions import ConfigurationError
from repro.kernels.base import Kernel, KernelExecution
from repro.runtime.cache import ResultCache
from repro.runtime.tasks import Task, default_worker_count, execute_tasks

__all__ = ["SweepPlan", "SweepRunner", "run_sweep", "default_worker_count"]


@dataclass(frozen=True)
class SweepPlan:
    """One kernel swept over a memory grid, on a fixed or scaled problem.

    Exactly one of ``problem`` (a fixed problem instance, as for
    :meth:`MemorySweep.run`) and ``scale`` (the kernel's default problem at
    that scale, as for :meth:`MemorySweep.run_default`) must be provided.
    """

    kernel: Kernel
    memory_sizes: tuple[int, ...]
    problem: Mapping[str, Any] | None = None
    scale: int | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if (self.problem is None) == (self.scale is None):
            raise ConfigurationError(
                "a SweepPlan needs exactly one of `problem` and `scale`, got "
                f"problem={self.problem!r}, scale={self.scale!r}"
            )
        object.__setattr__(
            self, "memory_sizes", normalize_memory_sizes(self.memory_sizes)
        )

    @property
    def label(self) -> str:
        return self.name or self.kernel.name

    def problem_at(self, memory_words: int) -> dict[str, Any]:
        """The problem instance for one memory size of this sweep."""
        if self.problem is not None:
            return dict(self.problem)
        return self.kernel.problem_for_memory(memory_words, self.scale)


@dataclass
class _Point:
    """One flattened execution: a kernel, a memory size and its problem."""

    plan_index: int
    point_index: int
    kernel: Kernel
    memory_words: int
    problem: dict[str, Any]
    verify: bool


def _execute_point(point: _Point) -> KernelExecution:
    """Worker entry: run one sweep point (picklable, top-level)."""
    execution = point.kernel.execute(point.memory_words, **point.problem)
    if point.verify and not point.kernel.verify(execution):
        raise ConfigurationError(
            f"{point.kernel.name} produced an incorrect result "
            f"at M={point.memory_words}"
        )
    return execution


class SweepRunner:
    """Executes sweep plans serially or across a process pool, with caching.

    Parameters
    ----------
    parallel:
        Fan kernel executions out across a process pool.  Results are
        collected back in submission order, so the output is deterministic
        and identical to a serial run.
    max_workers:
        Pool size; defaults to the machine's core count.
    cache:
        Optional :class:`ResultCache`.  Points whose key is present are
        replayed without executing anything; fresh executions are stored
        back.  Ignored when ``verify`` is set (verification needs the
        numerical output, which cached entries do not carry).
    verify:
        Check every execution's output against the kernel's reference
        implementation, as in :class:`MemorySweep`.
    """

    def __init__(
        self,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        verify: bool = False,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers!r}"
            )
        self.parallel = parallel
        self.max_workers = max_workers or default_worker_count()
        self.cache = cache
        self.verify = verify

    # -- public API ----------------------------------------------------------

    def run(
        self, kernel: Kernel, memory_sizes: Sequence[int], **problem: Any
    ) -> MemorySweepResult:
        """Sweep one kernel over ``memory_sizes`` on a fixed problem."""
        plan = SweepPlan(
            kernel=kernel, memory_sizes=tuple(memory_sizes), problem=problem
        )
        return self.run_plans([plan])[0]

    def run_default(
        self, kernel: Kernel, memory_sizes: Sequence[int], scale: int
    ) -> MemorySweepResult:
        """Sweep one kernel on its default problem at the given scale."""
        plan = SweepPlan(
            kernel=kernel, memory_sizes=tuple(memory_sizes), scale=scale
        )
        return self.run_plans([plan])[0]

    def run_plans(self, plans: Sequence[SweepPlan]) -> list[MemorySweepResult]:
        """Execute any number of sweeps as one flat batch of points.

        All points from all plans share the worker pool, so a multi-kernel
        suite saturates the machine even when individual sweeps are short.
        The returned list is ordered like ``plans``.
        """
        points: list[_Point] = []
        last_problems: dict[int, dict[str, Any]] = {}
        for plan_index, plan in enumerate(plans):
            for point_index, size in enumerate(plan.memory_sizes):
                plan.kernel.validate_memory(size)
                problem = plan.problem_at(size)
                # run_default semantics: the sweep reports the problem of the
                # largest memory size, matching MemorySweep.run_default.
                last_problems[plan_index] = problem
                points.append(
                    _Point(
                        plan_index=plan_index,
                        point_index=point_index,
                        kernel=plan.kernel,
                        memory_words=size,
                        problem=problem,
                        verify=self.verify,
                    )
                )

        executions = self._execute(points)

        grouped: dict[int, list[KernelExecution]] = {
            plan_index: [] for plan_index in range(len(plans))
        }
        for point, execution in zip(points, executions):
            grouped[point.plan_index].append(execution)

        return [
            MemorySweepResult(
                kernel_name=plan.kernel.name,
                problem=dict(last_problems[plan_index]),
                memory_sizes=plan.memory_sizes,
                executions=tuple(grouped[plan_index]),
            )
            for plan_index, plan in enumerate(plans)
        ]

    # -- internals -----------------------------------------------------------

    def _execute(self, points: list[_Point]) -> list[KernelExecution | None]:
        """Resolve every point, via cache where possible, preserving order."""
        executions: list[KernelExecution | None] = [None] * len(points)
        use_cache = self.cache is not None and not self.verify

        pending: list[tuple[int, _Point, str | None]] = []
        for i, point in enumerate(points):
            key = None
            if use_cache:
                key = self.cache.key_for(point.kernel, point.memory_words, point.problem)
                cached = self.cache.load(key)
                if cached is not None:
                    executions[i] = cached
                    continue
            pending.append((i, point, key))

        fresh = self._run_points([point for _, point, _ in pending])

        for (i, _, key), execution in zip(pending, fresh):
            executions[i] = execution
            if use_cache and key is not None:
                self.cache.store(key, execution)
        return executions

    def _run_points(self, points: list[_Point]) -> list[KernelExecution]:
        tasks = [
            Task(
                fn=_execute_point,
                params={"point": point},
                name=f"{point.kernel.name}@M={point.memory_words}",
            )
            for point in points
        ]
        return execute_tasks(
            tasks, parallel=self.parallel, max_workers=self.max_workers
        )


def run_sweep(
    kernel: Kernel,
    memory_sizes: Sequence[int],
    *,
    problem: Mapping[str, Any] | None = None,
    scale: int | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    cache: ResultCache | None = None,
    verify: bool = False,
) -> MemorySweepResult:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        parallel=parallel, max_workers=max_workers, cache=cache, verify=verify
    )
    plan = SweepPlan(
        kernel=kernel,
        memory_sizes=tuple(memory_sizes),
        problem=problem,
        scale=scale,
    )
    return runner.run_plans([plan])[0]
